file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_datavolume.dir/bench_t4_datavolume.cpp.o"
  "CMakeFiles/bench_t4_datavolume.dir/bench_t4_datavolume.cpp.o.d"
  "bench_t4_datavolume"
  "bench_t4_datavolume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_datavolume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
