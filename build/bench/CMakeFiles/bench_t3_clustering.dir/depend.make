# Empty dependencies file for bench_t3_clustering.
# This may be replaced when dependencies are built.
