file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_clustering.dir/bench_t3_clustering.cpp.o"
  "CMakeFiles/bench_t3_clustering.dir/bench_t3_clustering.cpp.o.d"
  "bench_t3_clustering"
  "bench_t3_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
