file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_scatter.dir/bench_f1_scatter.cpp.o"
  "CMakeFiles/bench_f1_scatter.dir/bench_f1_scatter.cpp.o.d"
  "bench_f1_scatter"
  "bench_f1_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
