file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_period_sensitivity.dir/bench_f5_period_sensitivity.cpp.o"
  "CMakeFiles/bench_f5_period_sensitivity.dir/bench_f5_period_sensitivity.cpp.o.d"
  "bench_f5_period_sensitivity"
  "bench_f5_period_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_period_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
