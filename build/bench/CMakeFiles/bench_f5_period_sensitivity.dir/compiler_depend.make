# Empty compiler generated dependencies file for bench_f5_period_sensitivity.
# This may be replaced when dependencies are built.
