# Empty compiler generated dependencies file for bench_a5_nonstationary.
# This may be replaced when dependencies are built.
