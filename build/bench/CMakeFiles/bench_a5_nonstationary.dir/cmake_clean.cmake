file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_nonstationary.dir/bench_a5_nonstationary.cpp.o"
  "CMakeFiles/bench_a5_nonstationary.dir/bench_a5_nonstationary.cpp.o.d"
  "bench_a5_nonstationary"
  "bench_a5_nonstationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_nonstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
