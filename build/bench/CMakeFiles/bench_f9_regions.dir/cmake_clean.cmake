file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_regions.dir/bench_f9_regions.cpp.o"
  "CMakeFiles/bench_f9_regions.dir/bench_f9_regions.cpp.o.d"
  "bench_f9_regions"
  "bench_f9_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
