file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_folding_curves.dir/bench_f3_folding_curves.cpp.o"
  "CMakeFiles/bench_f3_folding_curves.dir/bench_f3_folding_curves.cpp.o.d"
  "bench_f3_folding_curves"
  "bench_f3_folding_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_folding_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
