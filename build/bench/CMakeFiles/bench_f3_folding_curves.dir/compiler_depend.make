# Empty compiler generated dependencies file for bench_f3_folding_curves.
# This may be replaced when dependencies are built.
