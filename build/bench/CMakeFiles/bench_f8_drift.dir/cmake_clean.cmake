file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_drift.dir/bench_f8_drift.cpp.o"
  "CMakeFiles/bench_f8_drift.dir/bench_f8_drift.cpp.o.d"
  "bench_f8_drift"
  "bench_f8_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
