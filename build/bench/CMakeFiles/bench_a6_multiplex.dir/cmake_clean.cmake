file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_multiplex.dir/bench_a6_multiplex.cpp.o"
  "CMakeFiles/bench_a6_multiplex.dir/bench_a6_multiplex.cpp.o.d"
  "bench_a6_multiplex"
  "bench_a6_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
