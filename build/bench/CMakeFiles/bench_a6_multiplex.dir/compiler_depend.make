# Empty compiler generated dependencies file for bench_a6_multiplex.
# This may be replaced when dependencies are built.
