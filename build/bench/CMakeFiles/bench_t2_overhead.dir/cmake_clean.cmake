file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_overhead.dir/bench_t2_overhead.cpp.o"
  "CMakeFiles/bench_t2_overhead.dir/bench_t2_overhead.cpp.o.d"
  "bench_t2_overhead"
  "bench_t2_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
