# Empty compiler generated dependencies file for bench_a1_fit_ablation.
# This may be replaced when dependencies are built.
