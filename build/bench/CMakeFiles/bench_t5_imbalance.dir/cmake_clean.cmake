file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_imbalance.dir/bench_t5_imbalance.cpp.o"
  "CMakeFiles/bench_t5_imbalance.dir/bench_t5_imbalance.cpp.o.d"
  "bench_t5_imbalance"
  "bench_t5_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
