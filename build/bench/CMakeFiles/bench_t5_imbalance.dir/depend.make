# Empty dependencies file for bench_t5_imbalance.
# This may be replaced when dependencies are built.
