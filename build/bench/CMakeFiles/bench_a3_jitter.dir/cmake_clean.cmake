file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_jitter.dir/bench_a3_jitter.cpp.o"
  "CMakeFiles/bench_a3_jitter.dir/bench_a3_jitter.cpp.o.d"
  "bench_a3_jitter"
  "bench_a3_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
