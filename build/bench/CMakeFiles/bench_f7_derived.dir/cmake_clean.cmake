file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_derived.dir/bench_f7_derived.cpp.o"
  "CMakeFiles/bench_f7_derived.dir/bench_f7_derived.cpp.o.d"
  "bench_f7_derived"
  "bench_f7_derived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_derived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
