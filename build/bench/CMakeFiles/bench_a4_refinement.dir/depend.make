# Empty dependencies file for bench_a4_refinement.
# This may be replaced when dependencies are built.
