file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_refinement.dir/bench_a4_refinement.cpp.o"
  "CMakeFiles/bench_a4_refinement.dir/bench_a4_refinement.cpp.o.d"
  "bench_a4_refinement"
  "bench_a4_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
