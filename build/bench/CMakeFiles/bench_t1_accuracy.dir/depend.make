# Empty dependencies file for bench_t1_accuracy.
# This may be replaced when dependencies are built.
