# Empty compiler generated dependencies file for test_diffrun.
# This may be replaced when dependencies are built.
