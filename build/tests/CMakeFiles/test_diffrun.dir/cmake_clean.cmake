file(REMOVE_RECURSE
  "CMakeFiles/test_diffrun.dir/test_diffrun.cpp.o"
  "CMakeFiles/test_diffrun.dir/test_diffrun.cpp.o.d"
  "test_diffrun"
  "test_diffrun.pdb"
  "test_diffrun[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
