# Empty dependencies file for test_derived.
# This may be replaced when dependencies are built.
