file(REMOVE_RECURSE
  "CMakeFiles/test_phase_model.dir/test_phase_model.cpp.o"
  "CMakeFiles/test_phase_model.dir/test_phase_model.cpp.o.d"
  "test_phase_model"
  "test_phase_model.pdb"
  "test_phase_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
