# Empty dependencies file for test_imbalance.
# This may be replaced when dependencies are built.
