
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_binary_io.cpp" "tests/CMakeFiles/test_binary_io.dir/test_binary_io.cpp.o" "gcc" "tests/CMakeFiles/test_binary_io.dir/test_binary_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/cli/CMakeFiles/unveil_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/analysis/CMakeFiles/unveil_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/sim/CMakeFiles/unveil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/folding/CMakeFiles/unveil_folding.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/cluster/CMakeFiles/unveil_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/trace/CMakeFiles/unveil_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/counters/CMakeFiles/unveil_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
