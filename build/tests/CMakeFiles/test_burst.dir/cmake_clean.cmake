file(REMOVE_RECURSE
  "CMakeFiles/test_burst.dir/test_burst.cpp.o"
  "CMakeFiles/test_burst.dir/test_burst.cpp.o.d"
  "test_burst"
  "test_burst.pdb"
  "test_burst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
