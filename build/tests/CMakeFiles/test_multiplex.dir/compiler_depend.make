# Empty compiler generated dependencies file for test_multiplex.
# This may be replaced when dependencies are built.
