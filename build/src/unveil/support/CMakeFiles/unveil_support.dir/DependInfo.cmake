
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/support/log.cpp" "src/unveil/support/CMakeFiles/unveil_support.dir/log.cpp.o" "gcc" "src/unveil/support/CMakeFiles/unveil_support.dir/log.cpp.o.d"
  "/root/repo/src/unveil/support/rng.cpp" "src/unveil/support/CMakeFiles/unveil_support.dir/rng.cpp.o" "gcc" "src/unveil/support/CMakeFiles/unveil_support.dir/rng.cpp.o.d"
  "/root/repo/src/unveil/support/series.cpp" "src/unveil/support/CMakeFiles/unveil_support.dir/series.cpp.o" "gcc" "src/unveil/support/CMakeFiles/unveil_support.dir/series.cpp.o.d"
  "/root/repo/src/unveil/support/stats.cpp" "src/unveil/support/CMakeFiles/unveil_support.dir/stats.cpp.o" "gcc" "src/unveil/support/CMakeFiles/unveil_support.dir/stats.cpp.o.d"
  "/root/repo/src/unveil/support/table.cpp" "src/unveil/support/CMakeFiles/unveil_support.dir/table.cpp.o" "gcc" "src/unveil/support/CMakeFiles/unveil_support.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
