file(REMOVE_RECURSE
  "CMakeFiles/unveil_support.dir/log.cpp.o"
  "CMakeFiles/unveil_support.dir/log.cpp.o.d"
  "CMakeFiles/unveil_support.dir/rng.cpp.o"
  "CMakeFiles/unveil_support.dir/rng.cpp.o.d"
  "CMakeFiles/unveil_support.dir/series.cpp.o"
  "CMakeFiles/unveil_support.dir/series.cpp.o.d"
  "CMakeFiles/unveil_support.dir/stats.cpp.o"
  "CMakeFiles/unveil_support.dir/stats.cpp.o.d"
  "CMakeFiles/unveil_support.dir/table.cpp.o"
  "CMakeFiles/unveil_support.dir/table.cpp.o.d"
  "libunveil_support.a"
  "libunveil_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
