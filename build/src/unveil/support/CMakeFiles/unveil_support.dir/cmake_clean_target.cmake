file(REMOVE_RECURSE
  "libunveil_support.a"
)
