# Empty dependencies file for unveil_support.
# This may be replaced when dependencies are built.
