# Empty compiler generated dependencies file for unveil_support.
# This may be replaced when dependencies are built.
