# Empty dependencies file for unveil_cli.
# This may be replaced when dependencies are built.
