file(REMOVE_RECURSE
  "CMakeFiles/unveil_cli.dir/args.cpp.o"
  "CMakeFiles/unveil_cli.dir/args.cpp.o.d"
  "CMakeFiles/unveil_cli.dir/commands.cpp.o"
  "CMakeFiles/unveil_cli.dir/commands.cpp.o.d"
  "libunveil_cli.a"
  "libunveil_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
