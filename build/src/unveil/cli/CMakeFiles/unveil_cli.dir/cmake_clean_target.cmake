file(REMOVE_RECURSE
  "libunveil_cli.a"
)
