# Empty compiler generated dependencies file for unveil.
# This may be replaced when dependencies are built.
