file(REMOVE_RECURSE
  "CMakeFiles/unveil.dir/main.cpp.o"
  "CMakeFiles/unveil.dir/main.cpp.o.d"
  "unveil"
  "unveil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
