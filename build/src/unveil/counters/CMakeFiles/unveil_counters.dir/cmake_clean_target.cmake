file(REMOVE_RECURSE
  "libunveil_counters.a"
)
