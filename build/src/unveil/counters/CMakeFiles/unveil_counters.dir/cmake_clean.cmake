file(REMOVE_RECURSE
  "CMakeFiles/unveil_counters.dir/counter.cpp.o"
  "CMakeFiles/unveil_counters.dir/counter.cpp.o.d"
  "CMakeFiles/unveil_counters.dir/noise.cpp.o"
  "CMakeFiles/unveil_counters.dir/noise.cpp.o.d"
  "CMakeFiles/unveil_counters.dir/phase_model.cpp.o"
  "CMakeFiles/unveil_counters.dir/phase_model.cpp.o.d"
  "CMakeFiles/unveil_counters.dir/shape.cpp.o"
  "CMakeFiles/unveil_counters.dir/shape.cpp.o.d"
  "libunveil_counters.a"
  "libunveil_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
