# Empty compiler generated dependencies file for unveil_counters.
# This may be replaced when dependencies are built.
