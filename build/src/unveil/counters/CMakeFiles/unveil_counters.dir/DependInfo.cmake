
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/counters/counter.cpp" "src/unveil/counters/CMakeFiles/unveil_counters.dir/counter.cpp.o" "gcc" "src/unveil/counters/CMakeFiles/unveil_counters.dir/counter.cpp.o.d"
  "/root/repo/src/unveil/counters/noise.cpp" "src/unveil/counters/CMakeFiles/unveil_counters.dir/noise.cpp.o" "gcc" "src/unveil/counters/CMakeFiles/unveil_counters.dir/noise.cpp.o.d"
  "/root/repo/src/unveil/counters/phase_model.cpp" "src/unveil/counters/CMakeFiles/unveil_counters.dir/phase_model.cpp.o" "gcc" "src/unveil/counters/CMakeFiles/unveil_counters.dir/phase_model.cpp.o.d"
  "/root/repo/src/unveil/counters/shape.cpp" "src/unveil/counters/CMakeFiles/unveil_counters.dir/shape.cpp.o" "gcc" "src/unveil/counters/CMakeFiles/unveil_counters.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
