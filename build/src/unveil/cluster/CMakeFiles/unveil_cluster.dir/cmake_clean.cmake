file(REMOVE_RECURSE
  "CMakeFiles/unveil_cluster.dir/burst.cpp.o"
  "CMakeFiles/unveil_cluster.dir/burst.cpp.o.d"
  "CMakeFiles/unveil_cluster.dir/dbscan.cpp.o"
  "CMakeFiles/unveil_cluster.dir/dbscan.cpp.o.d"
  "CMakeFiles/unveil_cluster.dir/features.cpp.o"
  "CMakeFiles/unveil_cluster.dir/features.cpp.o.d"
  "CMakeFiles/unveil_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/unveil_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/unveil_cluster.dir/quality.cpp.o"
  "CMakeFiles/unveil_cluster.dir/quality.cpp.o.d"
  "CMakeFiles/unveil_cluster.dir/refine.cpp.o"
  "CMakeFiles/unveil_cluster.dir/refine.cpp.o.d"
  "CMakeFiles/unveil_cluster.dir/structure.cpp.o"
  "CMakeFiles/unveil_cluster.dir/structure.cpp.o.d"
  "libunveil_cluster.a"
  "libunveil_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
