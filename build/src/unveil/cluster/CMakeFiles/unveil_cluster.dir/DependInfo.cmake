
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/cluster/burst.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/burst.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/burst.cpp.o.d"
  "/root/repo/src/unveil/cluster/dbscan.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/dbscan.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/dbscan.cpp.o.d"
  "/root/repo/src/unveil/cluster/features.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/features.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/features.cpp.o.d"
  "/root/repo/src/unveil/cluster/kmeans.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/kmeans.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/unveil/cluster/quality.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/quality.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/quality.cpp.o.d"
  "/root/repo/src/unveil/cluster/refine.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/refine.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/refine.cpp.o.d"
  "/root/repo/src/unveil/cluster/structure.cpp" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/structure.cpp.o" "gcc" "src/unveil/cluster/CMakeFiles/unveil_cluster.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/counters/CMakeFiles/unveil_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/trace/CMakeFiles/unveil_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
