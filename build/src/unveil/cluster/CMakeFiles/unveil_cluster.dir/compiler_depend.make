# Empty compiler generated dependencies file for unveil_cluster.
# This may be replaced when dependencies are built.
