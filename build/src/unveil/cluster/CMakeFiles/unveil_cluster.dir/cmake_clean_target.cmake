file(REMOVE_RECURSE
  "libunveil_cluster.a"
)
