# Empty dependencies file for unveil_trace.
# This may be replaced when dependencies are built.
