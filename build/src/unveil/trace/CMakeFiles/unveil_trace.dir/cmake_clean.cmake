file(REMOVE_RECURSE
  "CMakeFiles/unveil_trace.dir/binary_io.cpp.o"
  "CMakeFiles/unveil_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/unveil_trace.dir/filter.cpp.o"
  "CMakeFiles/unveil_trace.dir/filter.cpp.o.d"
  "CMakeFiles/unveil_trace.dir/io.cpp.o"
  "CMakeFiles/unveil_trace.dir/io.cpp.o.d"
  "CMakeFiles/unveil_trace.dir/paraver.cpp.o"
  "CMakeFiles/unveil_trace.dir/paraver.cpp.o.d"
  "CMakeFiles/unveil_trace.dir/trace.cpp.o"
  "CMakeFiles/unveil_trace.dir/trace.cpp.o.d"
  "libunveil_trace.a"
  "libunveil_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
