file(REMOVE_RECURSE
  "libunveil_trace.a"
)
