
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/trace/binary_io.cpp" "src/unveil/trace/CMakeFiles/unveil_trace.dir/binary_io.cpp.o" "gcc" "src/unveil/trace/CMakeFiles/unveil_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/unveil/trace/filter.cpp" "src/unveil/trace/CMakeFiles/unveil_trace.dir/filter.cpp.o" "gcc" "src/unveil/trace/CMakeFiles/unveil_trace.dir/filter.cpp.o.d"
  "/root/repo/src/unveil/trace/io.cpp" "src/unveil/trace/CMakeFiles/unveil_trace.dir/io.cpp.o" "gcc" "src/unveil/trace/CMakeFiles/unveil_trace.dir/io.cpp.o.d"
  "/root/repo/src/unveil/trace/paraver.cpp" "src/unveil/trace/CMakeFiles/unveil_trace.dir/paraver.cpp.o" "gcc" "src/unveil/trace/CMakeFiles/unveil_trace.dir/paraver.cpp.o.d"
  "/root/repo/src/unveil/trace/trace.cpp" "src/unveil/trace/CMakeFiles/unveil_trace.dir/trace.cpp.o" "gcc" "src/unveil/trace/CMakeFiles/unveil_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/counters/CMakeFiles/unveil_counters.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
