
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/analysis/diffrun.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/diffrun.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/diffrun.cpp.o.d"
  "/root/repo/src/unveil/analysis/evolution.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/evolution.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/evolution.cpp.o.d"
  "/root/repo/src/unveil/analysis/experiments.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/experiments.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/experiments.cpp.o.d"
  "/root/repo/src/unveil/analysis/imbalance.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/imbalance.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/imbalance.cpp.o.d"
  "/root/repo/src/unveil/analysis/pipeline.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/pipeline.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/pipeline.cpp.o.d"
  "/root/repo/src/unveil/analysis/report.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/report.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/report.cpp.o.d"
  "/root/repo/src/unveil/analysis/representative.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/representative.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/representative.cpp.o.d"
  "/root/repo/src/unveil/analysis/spectral.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/spectral.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/spectral.cpp.o.d"
  "/root/repo/src/unveil/analysis/summary.cpp" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/summary.cpp.o" "gcc" "src/unveil/analysis/CMakeFiles/unveil_analysis.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/counters/CMakeFiles/unveil_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/trace/CMakeFiles/unveil_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/sim/CMakeFiles/unveil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/cluster/CMakeFiles/unveil_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/folding/CMakeFiles/unveil_folding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
