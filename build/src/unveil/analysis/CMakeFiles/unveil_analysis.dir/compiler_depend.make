# Empty compiler generated dependencies file for unveil_analysis.
# This may be replaced when dependencies are built.
