file(REMOVE_RECURSE
  "CMakeFiles/unveil_analysis.dir/diffrun.cpp.o"
  "CMakeFiles/unveil_analysis.dir/diffrun.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/evolution.cpp.o"
  "CMakeFiles/unveil_analysis.dir/evolution.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/experiments.cpp.o"
  "CMakeFiles/unveil_analysis.dir/experiments.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/imbalance.cpp.o"
  "CMakeFiles/unveil_analysis.dir/imbalance.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/pipeline.cpp.o"
  "CMakeFiles/unveil_analysis.dir/pipeline.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/report.cpp.o"
  "CMakeFiles/unveil_analysis.dir/report.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/representative.cpp.o"
  "CMakeFiles/unveil_analysis.dir/representative.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/spectral.cpp.o"
  "CMakeFiles/unveil_analysis.dir/spectral.cpp.o.d"
  "CMakeFiles/unveil_analysis.dir/summary.cpp.o"
  "CMakeFiles/unveil_analysis.dir/summary.cpp.o.d"
  "libunveil_analysis.a"
  "libunveil_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
