file(REMOVE_RECURSE
  "libunveil_analysis.a"
)
