file(REMOVE_RECURSE
  "CMakeFiles/unveil_folding.dir/accuracy.cpp.o"
  "CMakeFiles/unveil_folding.dir/accuracy.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/band.cpp.o"
  "CMakeFiles/unveil_folding.dir/band.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/derived.cpp.o"
  "CMakeFiles/unveil_folding.dir/derived.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/fit.cpp.o"
  "CMakeFiles/unveil_folding.dir/fit.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/folded.cpp.o"
  "CMakeFiles/unveil_folding.dir/folded.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/prune.cpp.o"
  "CMakeFiles/unveil_folding.dir/prune.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/rate.cpp.o"
  "CMakeFiles/unveil_folding.dir/rate.cpp.o.d"
  "CMakeFiles/unveil_folding.dir/regions.cpp.o"
  "CMakeFiles/unveil_folding.dir/regions.cpp.o.d"
  "libunveil_folding.a"
  "libunveil_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
