file(REMOVE_RECURSE
  "libunveil_folding.a"
)
