
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/folding/accuracy.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/accuracy.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/accuracy.cpp.o.d"
  "/root/repo/src/unveil/folding/band.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/band.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/band.cpp.o.d"
  "/root/repo/src/unveil/folding/derived.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/derived.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/derived.cpp.o.d"
  "/root/repo/src/unveil/folding/fit.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/fit.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/fit.cpp.o.d"
  "/root/repo/src/unveil/folding/folded.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/folded.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/folded.cpp.o.d"
  "/root/repo/src/unveil/folding/prune.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/prune.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/prune.cpp.o.d"
  "/root/repo/src/unveil/folding/rate.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/rate.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/rate.cpp.o.d"
  "/root/repo/src/unveil/folding/regions.cpp" "src/unveil/folding/CMakeFiles/unveil_folding.dir/regions.cpp.o" "gcc" "src/unveil/folding/CMakeFiles/unveil_folding.dir/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/counters/CMakeFiles/unveil_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/trace/CMakeFiles/unveil_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/cluster/CMakeFiles/unveil_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
