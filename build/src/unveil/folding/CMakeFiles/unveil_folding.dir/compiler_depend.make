# Empty compiler generated dependencies file for unveil_folding.
# This may be replaced when dependencies are built.
