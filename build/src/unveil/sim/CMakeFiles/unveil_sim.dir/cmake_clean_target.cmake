file(REMOVE_RECURSE
  "libunveil_sim.a"
)
