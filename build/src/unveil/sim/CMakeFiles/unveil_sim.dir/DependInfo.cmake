
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unveil/sim/application.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/application.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/application.cpp.o.d"
  "/root/repo/src/unveil/sim/apps/amrflow.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/amrflow.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/amrflow.cpp.o.d"
  "/root/repo/src/unveil/sim/apps/nbsolver.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/nbsolver.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/nbsolver.cpp.o.d"
  "/root/repo/src/unveil/sim/apps/particlemesh.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/particlemesh.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/particlemesh.cpp.o.d"
  "/root/repo/src/unveil/sim/apps/registry.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/registry.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/registry.cpp.o.d"
  "/root/repo/src/unveil/sim/apps/wavesim.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/wavesim.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/apps/wavesim.cpp.o.d"
  "/root/repo/src/unveil/sim/engine.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/engine.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/engine.cpp.o.d"
  "/root/repo/src/unveil/sim/measurement.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/measurement.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/measurement.cpp.o.d"
  "/root/repo/src/unveil/sim/network.cpp" "src/unveil/sim/CMakeFiles/unveil_sim.dir/network.cpp.o" "gcc" "src/unveil/sim/CMakeFiles/unveil_sim.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unveil/support/CMakeFiles/unveil_support.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/counters/CMakeFiles/unveil_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/unveil/trace/CMakeFiles/unveil_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
