file(REMOVE_RECURSE
  "CMakeFiles/unveil_sim.dir/application.cpp.o"
  "CMakeFiles/unveil_sim.dir/application.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/apps/amrflow.cpp.o"
  "CMakeFiles/unveil_sim.dir/apps/amrflow.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/apps/nbsolver.cpp.o"
  "CMakeFiles/unveil_sim.dir/apps/nbsolver.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/apps/particlemesh.cpp.o"
  "CMakeFiles/unveil_sim.dir/apps/particlemesh.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/apps/registry.cpp.o"
  "CMakeFiles/unveil_sim.dir/apps/registry.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/apps/wavesim.cpp.o"
  "CMakeFiles/unveil_sim.dir/apps/wavesim.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/engine.cpp.o"
  "CMakeFiles/unveil_sim.dir/engine.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/measurement.cpp.o"
  "CMakeFiles/unveil_sim.dir/measurement.cpp.o.d"
  "CMakeFiles/unveil_sim.dir/network.cpp.o"
  "CMakeFiles/unveil_sim.dir/network.cpp.o.d"
  "libunveil_sim.a"
  "libunveil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unveil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
