# Empty compiler generated dependencies file for unveil_sim.
# This may be replaced when dependencies are built.
