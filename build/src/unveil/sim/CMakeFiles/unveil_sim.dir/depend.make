# Empty dependencies file for unveil_sim.
# This may be replaced when dependencies are built.
