/// Tests for the background telemetry sampler (sampler.hpp): memory/pool
/// snapshots, the live-span census, the final-tick guarantee, the new
/// metrics-JSON/Chrome-trace sections it feeds, and a TSan-exercised stress
/// run hammering spans and counters from pool workers while the sampler
/// ticks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/sampler.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::support {
namespace {

using telemetry::Session;
using telemetry::Snapshot;
using telemetry::Span;

SamplerConfig manualConfig() {
  SamplerConfig config;
  config.intervalMs = 0;  // no background thread; tests tick explicitly
  return config;
}

TEST(MemoryStatus, ReportsProcessMemoryOnLinux) {
#if defined(__linux__)
  const auto mem = readMemoryStatus();
  EXPECT_GT(mem.rssBytes, 0u);
  EXPECT_GE(mem.hwmBytes, mem.rssBytes / 2);  // HWM is a peak of RSS
#else
  GTEST_SKIP() << "procfs only";
#endif
}

TEST(MemoryStatus, ProcessCpuAdvances) {
  const auto before = processCpuNs();
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + static_cast<double>(i) * 0.5;
  EXPECT_GE(processCpuNs(), before);
}

TEST(Sampler, SampleOnceRecordsPoolMemoryAndCounters) {
  Session session;
  session.activate();
  telemetry::count("cluster.classified", 42);
  Sampler sampler(session, manualConfig());
  sampler.sampleOnce();
  sampler.sampleOnce();
  session.deactivate();

  const Snapshot snap = session.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_EQ(sampler.samplesTaken(), 2u);
  // Tracked counter names are index-aligned with every sample's values.
  ASSERT_FALSE(snap.sampleCounterNames.empty());
  std::size_t classifiedIdx = snap.sampleCounterNames.size();
  for (std::size_t i = 0; i < snap.sampleCounterNames.size(); ++i)
    if (snap.sampleCounterNames[i] == "cluster.classified") classifiedIdx = i;
  ASSERT_LT(classifiedIdx, snap.sampleCounterNames.size());
  for (const auto& s : snap.samples) {
    ASSERT_EQ(s.counters.size(), snap.sampleCounterNames.size());
    EXPECT_EQ(s.counters[classifiedIdx], 42u);
    EXPECT_GE(s.tNs, 0);
#if defined(__linux__)
    EXPECT_GT(s.rssBytes, 0u);
#endif
  }
  // Session-relative timestamps are monotone.
  EXPECT_LE(snap.samples[0].tNs, snap.samples[1].tNs);
}

TEST(Sampler, TrackedCountersNeverCreateMetrics) {
  Session session;
  session.activate();
  Sampler sampler(session, manualConfig());
  sampler.sampleOnce();  // none of the tracked counters exist yet
  session.deactivate();
  const Snapshot snap = session.snapshot();
  // Sampling must observe, not pollute: the counter map stays empty.
  EXPECT_TRUE(snap.counters.empty());
  ASSERT_EQ(snap.samples.size(), 1u);
  for (const auto v : snap.samples[0].counters) EXPECT_EQ(v, 0u);
}

TEST(Sampler, StopTakesAFinalTickSoShortRunsGetASample) {
  Session session;
  session.activate();
  SamplerConfig config;
  config.intervalMs = 60'000;  // would never tick within the test
  Sampler sampler(session, config);
  sampler.stop();
  sampler.stop();  // idempotent
  session.deactivate();
  EXPECT_GE(session.snapshot().samples.size(), 1u);
}

TEST(Sampler, BackgroundThreadTicksAtInterval) {
  Session session;
  session.activate();
  SamplerConfig config;
  config.intervalMs = 1.0;
  {
    Sampler sampler(session, config);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (sampler.samplesTaken() < 3 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(sampler.samplesTaken(), 3u);
  }
  session.deactivate();
  EXPECT_GE(session.snapshot().samples.size(), 3u);
}

TEST(Sampler, LiveSpanCensusTracksInnermostSpan) {
  Session session;
  session.activate();
  EXPECT_TRUE(session.liveThreadSpans().empty());
  {
    Span outer("outer");
    {
      Span inner("inner");
      const auto live = session.liveThreadSpans();
      ASSERT_EQ(live.size(), 1u);
      EXPECT_EQ(live[0].spanId, inner.id());
    }
    const auto live = session.liveThreadSpans();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].spanId, outer.id());
  }
  // All spans closed: the census must drain back to empty, or idle threads
  // would count as live forever.
  EXPECT_TRUE(session.liveThreadSpans().empty());
  session.deactivate();
}

TEST(Sampler, CensusSeesPoolWorkerSpans) {
  setGlobalThreads(4);
  Session session;
  session.activate();
  std::atomic<std::size_t> maxLive{0};
  globalPool().parallelFor(64, [&](std::size_t) {
    Span span("worker.job");
    const auto live = Session::active()->liveThreadSpans().size();
    std::size_t prev = maxLive.load();
    while (live > prev && !maxLive.compare_exchange_weak(prev, live)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  session.deactivate();
  setGlobalThreads(0);
  EXPECT_GE(maxLive.load(), 1u);
}

/// The TSan target: spans open/close and counters bump from every pool
/// worker while the background sampler reads pool health, the live-span
/// census and counter values at an aggressive 1 ms rate.
TEST(Sampler, StressSpansAndCountersWhileSampling) {
  setGlobalThreads(4);
  Session session;
  session.activate();
  SamplerConfig config;
  config.intervalMs = 1.0;
  config.trackCounters = {"stress.jobs"};
  {
    Sampler sampler(session, config);
    for (int round = 0; round < 8; ++round) {
      globalPool().parallelFor(128, [&](std::size_t i) {
        Span span("stress.job");
        span.attr("i", static_cast<std::uint64_t>(i));
        telemetry::count("stress.jobs");
        { Span nested("stress.nested"); }
      });
    }
  }
  session.deactivate();
  setGlobalThreads(0);

  const Snapshot snap = session.snapshot();
  EXPECT_EQ(snap.counters.at("stress.jobs"), 8u * 128u);
  EXPECT_GE(snap.samples.size(), 1u);
  for (const auto& s : snap.samples)
    ASSERT_EQ(s.counters.size(), snap.sampleCounterNames.size());
  // 2 spans per job, all committed by deactivate time.
  std::size_t stressSpans = 0;
  for (const auto& s : snap.spans)
    if (s.name == "stress.job" || s.name == "stress.nested") ++stressSpans;
  EXPECT_EQ(stressSpans, 2u * 8u * 128u);
}

TEST(Sampler, MetricsJsonGainsSamplerAndStageResourceSections) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 40;
  p.seed = 3;
  const auto run =
      analysis::runMeasured("wavesim", p, sim::MeasurementConfig::folding());

  Session session;
  session.activate();
  {
    SamplerConfig config;
    config.intervalMs = 0.5;  // fast ticks so stages catch samples
    Sampler sampler(session, config);
    const auto result = analysis::analyze(run.trace);
    // Per-stage resource stats ride on PipelineResult::telemetry now.
    ASSERT_FALSE(result.telemetry.empty());
    for (const auto& stage : result.telemetry) EXPECT_GE(stage.cpuNs, 0);
  }
  session.deactivate();

  const Snapshot snap = session.snapshot();
  ASSERT_GE(snap.samples.size(), 1u);

  std::ostringstream metrics;
  telemetry::writeMetricsJson(snap, metrics);
  const std::string json = metrics.str();
  EXPECT_NE(json.find("\"sampler\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_peak_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization_pct\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"stage_resources\""), std::string::npos);
  // Stage CPU/memory accounting lands in the ordinary metric maps too.
  EXPECT_NE(json.find("stage.cpu_ns.cluster"), std::string::npos);
  EXPECT_NE(json.find("stage.rss_delta_kb.cluster"), std::string::npos);

  std::ostringstream trace;
  telemetry::writeChromeTrace(snap, trace);
  const std::string chrome = trace.str();
  // Counter tracks: the sampler time-series rendered as "ph":"C" events.
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"pool\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"memory_mb\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"live_span_threads\""), std::string::npos);
}

TEST(Sampler, SamplesWithoutSessionSampleStillSafe) {
  // A sampler whose session deactivates mid-flight must keep ticking
  // safely: recordSample targets the session object directly, not the
  // global slot.
  Session session;
  session.activate();
  Sampler sampler(session, manualConfig());
  session.deactivate();
  sampler.sampleOnce();
  EXPECT_EQ(session.snapshot().samples.size(), 1u);
}

}  // namespace
}  // namespace unveil::support
