#pragma once

/// \file test_util.hpp
/// Shared fixtures for the unveil test suite: hand-rolled synthetic traces
/// with exactly known properties, and small simulated runs cached per test
/// binary so expensive simulations are not repeated per TEST.

#include <cmath>
#include <functional>
#include <memory>

#include "unveil/analysis/experiments.hpp"
#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/engine.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::testutil {

/// Parameters of a hand-rolled synthetic trace.
struct SyntheticSpec {
  std::size_t bursts = 50;             ///< Burst instances on one rank.
  std::size_t samplesPerBurst = 10;    ///< Evenly spaced samples inside each.
  trace::TimeNs burstNs = 1'000'000;   ///< Duration of each burst.
  trace::TimeNs gapNs = 100'000;       ///< Gap (MPI) between bursts.
  std::uint32_t phaseId = 0;           ///< Phase id stamped on probes.
  double totalIns = 2'000'000.0;       ///< TOT_INS increment per burst.
  /// Cumulative profile of TOT_INS, must be monotone with f(0)=0, f(1)=1.
  std::function<double(double)> cdf = [](double t) { return t; };
};

/// Builds a finalized single-rank trace of `bursts` phase instances, each
/// carrying `samplesPerBurst` samples whose counters follow `cdf` exactly.
/// MPI Send/Recv probe pairs separate bursts so both extraction modes work.
inline trace::Trace makeSyntheticTrace(const SyntheticSpec& spec) {
  trace::Trace t("synthetic", 1);
  counters::CounterSet cum;
  trace::TimeNs now = 1000;
  for (std::size_t b = 0; b < spec.bursts; ++b) {
    trace::Event begin;
    begin.rank = 0;
    begin.time = now;
    begin.kind = trace::EventKind::PhaseBegin;
    begin.value = spec.phaseId;
    begin.counters = cum;
    t.addEvent(begin);

    for (std::size_t s = 0; s < spec.samplesPerBurst; ++s) {
      const double frac = static_cast<double>(s + 1) /
                          static_cast<double>(spec.samplesPerBurst + 1);
      trace::Sample sample;
      sample.rank = 0;
      sample.time = now + static_cast<trace::TimeNs>(
                              frac * static_cast<double>(spec.burstNs));
      sample.counters = cum;
      sample.counters[counters::CounterId::TotIns] +=
          static_cast<std::uint64_t>(std::llround(spec.totalIns * spec.cdf(frac)));
      sample.counters[counters::CounterId::TotCyc] += static_cast<std::uint64_t>(
          std::llround(spec.totalIns * frac));  // cycles flat in time
      t.addSample(sample);
    }

    now += spec.burstNs;
    cum[counters::CounterId::TotIns] +=
        static_cast<std::uint64_t>(std::llround(spec.totalIns));
    cum[counters::CounterId::TotCyc] +=
        static_cast<std::uint64_t>(std::llround(spec.totalIns));
    trace::Event end;
    end.rank = 0;
    end.time = now;
    end.kind = trace::EventKind::PhaseEnd;
    end.value = spec.phaseId;
    end.counters = cum;
    t.addEvent(end);

    // An MPI pair in the gap so MPI-gap extraction sees burst boundaries.
    trace::Event mb = end;
    mb.kind = trace::EventKind::MpiBegin;
    mb.value = static_cast<std::uint32_t>(trace::MpiOp::Barrier);
    mb.time = now + spec.gapNs / 4;
    t.addEvent(mb);
    trace::Event me = mb;
    me.kind = trace::EventKind::MpiEnd;
    me.time = now + spec.gapNs / 2;
    t.addEvent(me);
    now += spec.gapNs;
  }
  t.setDurationNs(now + 1000);
  t.finalize();
  return t;
}

/// A small measured wavesim run, computed once per test binary.
inline const sim::RunResult& smallWavesimRun() {
  static const sim::RunResult run = [] {
    sim::apps::AppParams p;
    p.ranks = 4;
    p.iterations = 40;
    p.seed = 5;
    return analysis::runMeasured("wavesim", p, sim::MeasurementConfig::folding());
  }();
  return run;
}

}  // namespace unveil::testutil
