/// Tests for the load-balance characterization.

#include <gtest/gtest.h>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/imbalance.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

const PipelineResult& balancedResult() {
  static const PipelineResult result = analyze(testutil::smallWavesimRun().trace);
  return result;
}

TEST(Imbalance, BalancedAppNearOne) {
  const auto rows = imbalanceAnalysis(balancedResult(), 4);
  ASSERT_GE(rows.size(), 3u);
  for (const auto& r : rows) {
    if (r.iterationsMeasured == 0) continue;
    // wavesim's rank imbalance sigmas are <= 4%: factor stays below ~1.2.
    EXPECT_GE(r.imbalanceFactor, 1.0);
    EXPECT_LT(r.imbalanceFactor, 1.25) << "cluster " << r.clusterId;
    EXPECT_LT(r.durationCovAcrossRanks, 0.15);
  }
}

TEST(Imbalance, ImbalancedPhaseStandsOut) {
  sim::apps::AppParams p;
  p.ranks = 8;
  p.iterations = 40;
  p.seed = 19;
  const auto run = runMeasured("particlemesh", p, sim::MeasurementConfig::folding());
  const auto result = analyze(run.trace);
  const auto rows = imbalanceAnalysis(result, 8);

  // Find the force_eval cluster (truth phase 1, rankImbalanceSigma 0.12) and
  // a light phase (tree_build, sigma 0.05).
  double forceFactor = 0.0, packCov = 1.0, forceCov = 0.0;
  for (const auto& r : rows) {
    if (r.modalTruthPhase == 1) {
      forceFactor = std::max(forceFactor, r.imbalanceFactor);
      forceCov = std::max(forceCov, r.durationCovAcrossRanks);
    }
    if (r.modalTruthPhase == 2) packCov = r.durationCovAcrossRanks;
  }
  EXPECT_GT(forceFactor, 1.10);  // visible parallel inefficiency
  EXPECT_GT(forceCov, packCov);  // persistent, not jitter
}

TEST(Imbalance, TransferPotentialBounded) {
  const auto rows = imbalanceAnalysis(balancedResult(), 4);
  double total = 0.0;
  for (const auto& r : rows) {
    EXPECT_GE(r.transferPotential, 0.0);
    EXPECT_LE(r.transferPotential, r.timeShare + 1e-12);
    total += r.transferPotential;
  }
  EXPECT_LE(total, 1.0);
}

TEST(Imbalance, TableShape) {
  const auto rows = imbalanceAnalysis(balancedResult(), 4);
  const auto table = imbalanceTable(rows);
  EXPECT_EQ(table.rows(), rows.size());
  EXPECT_EQ(table.cols(), 7u);
}

TEST(Imbalance, SingleRankClusterReported) {
  PipelineResult result;
  // Two bursts, same rank, one cluster: rank coverage < 2 -> defaults kept.
  result.bursts.resize(2);
  result.bursts[0].rank = 0;
  result.bursts[0].begin = 0;
  result.bursts[0].end = 100;
  result.bursts[1].rank = 0;
  result.bursts[1].begin = 200;
  result.bursts[1].end = 300;
  result.clustering.labels = {0, 0};
  result.clustering.numClusters = 1;
  ClusterReport report;
  report.clusterId = 0;
  report.memberIdx = {0, 1};
  report.instances = 2;
  result.clusters.push_back(report);
  const auto rows = imbalanceAnalysis(result, 4);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].imbalanceFactor, 1.0);
  EXPECT_EQ(rows[0].iterationsMeasured, 0u);
}

}  // namespace
}  // namespace unveil::analysis
