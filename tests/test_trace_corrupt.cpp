/// \file test_trace_corrupt.cpp
/// Hostile-input suite for the binary trace reader: truncation at every
/// structural boundary, resource-exhaustion claims, inconsistent shard
/// tables, and the per-shard graceful-degradation path (drop the corrupt
/// rank, keep the rest) with its strict-mode counterpart.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"

namespace unveil {
namespace {

using trace::readBinary;
using trace::ReadOptions;
using trace::ReadReport;
using trace::Trace;
using trace::writeBinary;

std::string encode(const Trace& t) {
  std::ostringstream os(std::ios::binary);
  writeBinary(t, os);
  return os.str();
}

Trace parse(const std::string& bytes, const ReadOptions& options = {},
            ReadReport* report = nullptr) {
  std::istringstream is(bytes);
  return readBinary(is, options, report);
}

void appendVarint(std::string& out, std::uint64_t v) {
  while (true) {
    const auto b = static_cast<unsigned char>(v & 0x7f);
    v >>= 7;
    if (v) {
      out += static_cast<char>(b | 0x80);
    } else {
      out += static_cast<char>(b);
      return;
    }
  }
}

std::uint64_t readVarint(const std::string& bytes, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const auto b = static_cast<unsigned char>(bytes.at(pos++));
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// Byte layout of an encoded UVTB2 stream, recovered by walking its header
/// the same way the reader does — lets tests aim corruption at an exact
/// shard.
struct V2Layout {
  std::uint64_t ranks = 0;
  std::uint64_t dataStart = 0;               ///< First byte after the table.
  std::vector<std::uint64_t> shardOffset;    ///< Absolute, per rank.
  std::vector<std::uint64_t> shardBytes;
};

V2Layout layoutOf(const std::string& bytes) {
  V2Layout out;
  std::size_t pos = 6;  // "UVTB2\n"
  const auto nameLen = readVarint(bytes, pos);
  pos += static_cast<std::size_t>(nameLen);
  out.ranks = readVarint(bytes, pos);
  readVarint(bytes, pos);  // duration
  readVarint(bytes, pos);  // nEvents
  readVarint(bytes, pos);  // nSamples
  readVarint(bytes, pos);  // nStates
  for (std::uint64_t r = 0; r < out.ranks; ++r) {
    readVarint(bytes, pos);  // events
    readVarint(bytes, pos);  // samples
    readVarint(bytes, pos);  // states
    out.shardBytes.push_back(readVarint(bytes, pos));
  }
  out.dataStart = pos;
  std::uint64_t off = pos;
  for (std::uint64_t r = 0; r < out.ranks; ++r) {
    out.shardOffset.push_back(off);
    off += out.shardBytes[static_cast<std::size_t>(r)];
  }
  return out;
}

const std::string& wavesimBytes() {
  static const std::string bytes = encode(testutil::smallWavesimRun().trace);
  return bytes;
}

// --- truncation ------------------------------------------------------------

TEST(TraceCorrupt, TruncationAtEveryByteIsRejectedStrict) {
  const std::string& full = wavesimBytes();
  // Every prefix is structurally incomplete; strict mode must say so.
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    EXPECT_THROW((void)parse(full.substr(0, cut)), TraceError)
        << "cut at " << cut;
  }
}

TEST(TraceCorrupt, TruncationNeverCrashesLenient) {
  const std::string& full = wavesimBytes();
  const V2Layout layout = layoutOf(full);
  std::size_t recovered = 0;
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    ReadReport report;
    try {
      (void)parse(full.substr(0, cut), {.strict = false}, &report);
      ++recovered;
      // Lenient recovery requires at least the complete header/table.
      EXPECT_GE(cut, layout.dataStart) << "cut at " << cut;
    } catch (const TraceError&) {
      // clean rejection — fine
    }
  }
  // Cuts inside the last shard leave all earlier shards decodable, so the
  // lenient path must recover at least some of them.
  EXPECT_GT(recovered, 0u);
}

// --- resource-exhaustion claims -------------------------------------------

std::string craftedBillionRecordFile() {
  std::string bytes = "UVTB2\n";
  appendVarint(bytes, 1);  // nameLen
  bytes += 'a';
  appendVarint(bytes, 1);              // ranks
  appendVarint(bytes, 0);              // duration
  appendVarint(bytes, 1'000'000'000);  // nEvents claimed by the header
  appendVarint(bytes, 0);              // nSamples
  appendVarint(bytes, 0);              // nStates
  appendVarint(bytes, 1'000'000'000);  // shard table: events
  appendVarint(bytes, 0);              // samples
  appendVarint(bytes, 0);              // states
  appendVarint(bytes, 20);             // shard length: 20 bytes
  bytes.append(20, '\0');
  return bytes;
}

TEST(TraceCorrupt, BillionRecordClaimIn64BytesFailsWithContext) {
  const std::string bytes = craftedBillionRecordFile();
  ASSERT_LE(bytes.size(), 64u);
  try {
    (void)parse(bytes);
    FAIL() << "crafted resource-exhaustion file parsed";
  } catch (const TraceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shard"), std::string::npos) << msg;
  }
}

TEST(TraceCorrupt, HugeRankCountInTinyFileIsRejected) {
  // Claims 2^24 ranks with no table behind it; the reader must fail on
  // truncation after a handful of entries, not allocate per-rank arrays.
  std::string bytes = "UVTB2\n";
  appendVarint(bytes, 1);
  bytes += 'a';
  appendVarint(bytes, (1u << 24));
  appendVarint(bytes, 0);
  appendVarint(bytes, 0);
  appendVarint(bytes, 0);
  appendVarint(bytes, 0);
  EXPECT_THROW((void)parse(bytes), TraceError);
  EXPECT_THROW((void)parse(bytes, {.strict = false}), TraceError);
}

TEST(TraceCorrupt, ImplausibleRankCountIsRejected) {
  std::string bytes = "UVTB2\n";
  appendVarint(bytes, 1);
  bytes += 'a';
  appendVarint(bytes, (std::uint64_t{1} << 32));
  EXPECT_THROW((void)parse(bytes), TraceError);
}

TEST(TraceCorrupt, ImplausibleShardLengthIsRejected) {
  std::string bytes = "UVTB2\n";
  appendVarint(bytes, 1);
  bytes += 'a';
  appendVarint(bytes, 1);  // ranks
  appendVarint(bytes, 0);  // duration
  appendVarint(bytes, 0);  // nEvents
  appendVarint(bytes, 0);  // nSamples
  appendVarint(bytes, 0);  // nStates
  appendVarint(bytes, 0);  // table: events
  appendVarint(bytes, 0);  // samples
  appendVarint(bytes, 0);  // states
  appendVarint(bytes, std::uint64_t{1} << 60);  // absurd shard length
  EXPECT_THROW((void)parse(bytes), TraceError);
}

TEST(TraceCorrupt, ShardTableHeaderDisagreementIsFatalEvenLenient) {
  // Bump the header event count so the table no longer sums to it: no shard
  // boundary can be trusted, so even lenient mode must refuse.
  std::string bytes = wavesimBytes();
  std::size_t pos = 6;
  const auto nameLen = readVarint(bytes, pos);
  pos += static_cast<std::size_t>(nameLen);
  readVarint(bytes, pos);  // ranks
  readVarint(bytes, pos);  // duration
  const std::size_t eventsPos = pos;
  const auto nEvents = readVarint(bytes, pos);
  std::string patched = bytes.substr(0, eventsPos);
  appendVarint(patched, nEvents + 1);
  patched += bytes.substr(pos);
  EXPECT_THROW((void)parse(patched), TraceError);
  EXPECT_THROW((void)parse(patched, {.strict = false}), TraceError);
}

// --- graceful per-shard degradation ---------------------------------------

/// wavesim bytes with rank \p victim's shard overwritten by continuation
/// bytes (an unterminated varint: unambiguously corrupt).
std::string withCorruptShard(std::uint64_t victim) {
  std::string bytes = wavesimBytes();
  const V2Layout layout = layoutOf(bytes);
  const auto off = static_cast<std::size_t>(layout.shardOffset[victim]);
  for (std::size_t i = 0; i < 12 && off + i < bytes.size(); ++i)
    bytes[off + i] = static_cast<char>(0x80);
  return bytes;
}

TEST(TraceCorrupt, LenientModeDropsOnlyTheCorruptShard) {
  const Trace& original = testutil::smallWavesimRun().trace;
  const std::string bytes = withCorruptShard(1);
  telemetry::Session session;
  session.activate();
  ReadReport report;
  const Trace t = parse(bytes, {.strict = false}, &report);
  session.deactivate();

  ASSERT_EQ(report.droppedShards.size(), 1u);
  EXPECT_EQ(report.droppedShards[0].rank, 1u);
  EXPECT_GT(report.droppedShards[0].offset, 0u);
  EXPECT_FALSE(report.droppedShards[0].reason.empty());
  EXPECT_EQ(report.totalRanks, original.numRanks());

  // Rank geometry is preserved; only rank 1's records are missing.
  EXPECT_EQ(t.numRanks(), original.numRanks());
  std::size_t rank1 = 0, others = 0;
  for (const auto& e : t.events()) (e.rank == 1 ? rank1 : others)++;
  for (const auto& s : t.samples()) (s.rank == 1 ? rank1 : others)++;
  EXPECT_EQ(rank1, 0u);
  EXPECT_GT(others, 0u);

  // The drop is visible in telemetry, not just the return value.
  const auto snap = session.snapshot();
  const auto it = snap.counters.find("trace.shards_dropped");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, 1u);
}

TEST(TraceCorrupt, StrictModeNamesShardRankAndOffset) {
  const std::string bytes = withCorruptShard(2);
  try {
    (void)parse(bytes);  // strict is the library default
    FAIL() << "strict parse of corrupt shard succeeded";
  } catch (const TraceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset="), std::string::npos) << msg;
  }
}

TEST(TraceCorrupt, AllShardsCorruptThrowsEvenLenient) {
  std::string bytes = wavesimBytes();
  const V2Layout layout = layoutOf(bytes);
  for (std::uint64_t r = 0; r < layout.ranks; ++r) {
    const auto off = static_cast<std::size_t>(layout.shardOffset[r]);
    for (std::size_t i = 0; i < 12 && off + i < bytes.size(); ++i)
      bytes[off + i] = static_cast<char>(0x80);
  }
  EXPECT_THROW((void)parse(bytes, {.strict = false}), TraceError);
}

TEST(TraceCorrupt, TrailingGarbageAfterFinalShardIsRejectedStrict) {
  std::string bytes = wavesimBytes();
  bytes += "garbage";
  EXPECT_THROW((void)parse(bytes), TraceError);
  // The shards themselves are intact, so degrade mode recovers everything.
  ReadReport report;
  const Trace t = parse(bytes, {.strict = false}, &report);
  EXPECT_TRUE(report.droppedShards.empty());
  EXPECT_EQ(t.numRanks(), testutil::smallWavesimRun().trace.numRanks());
}

// --- cross-shard record claims --------------------------------------------

TEST(TraceCorrupt, ShardRecordTimeBeyondDurationIsShardLocal) {
  // Inflate a record's time delta inside rank 0's shard so it exceeds the
  // header duration: strict rejects with shard context, lenient drops only
  // that shard.
  std::string bytes = wavesimBytes();
  const V2Layout layout = layoutOf(bytes);
  const auto off = static_cast<std::size_t>(layout.shardOffset[0]);
  // First field of the first event is its time delta; make it enormous but
  // still a valid varint (9 continuation bytes + terminator ≈ 2^63).
  std::string patched = bytes.substr(0, off);
  patched.append(9, static_cast<char>(0xff));
  patched += static_cast<char>(0x7f);
  patched += bytes.substr(off + 10 <= bytes.size() ? off + 10 : bytes.size());
  ReadReport report;
  try {
    const Trace t = parse(patched, {.strict = false}, &report);
    // Either the damage confined itself to shard 0 (dropped) ...
    EXPECT_FALSE(report.droppedShards.empty());
    for (const auto& d : report.droppedShards) EXPECT_LT(d.rank, layout.ranks);
    (void)t;
  } catch (const TraceError&) {
    // ... or the overwrite clipped the shard framing itself — also clean.
  }
}

}  // namespace
}  // namespace unveil
