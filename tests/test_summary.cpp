/// Tests for the aggregated performance report.

#include <gtest/gtest.h>

#include <sstream>

#include "unveil/analysis/summary.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

const PerformanceReport& sharedReport() {
  static const PerformanceReport report = [] {
    ReportOptions options;
    options.pipeline.reconstruct.fold.perSampleOverheadNs = 2000.0;
    options.pipeline.reconstruct.fold.probeOverheadNs = 100.0;
    return buildReport(testutil::smallWavesimRun().trace, options);
  }();
  return report;
}

TEST(Summary, AllSectionsPopulated) {
  const auto& r = sharedReport();
  EXPECT_GE(r.pipeline.clustering.numClusters, 3u);
  EXPECT_EQ(r.pipeline.period.period, 3u);
  EXPECT_FALSE(r.imbalance.empty());
  EXPECT_FALSE(r.evolution.empty());
  EXPECT_GT(r.spmdness, 0.95);
  EXPECT_GT(r.spectral.periodNs, 0.0);
  EXPECT_TRUE(r.representative.has_value());
}

TEST(Summary, RegionsForMultiRegionPhase) {
  const auto& r = sharedReport();
  // The sweep cluster (modal phase 1) has 3 regions; find it.
  bool found = false;
  for (const auto& c : r.pipeline.clusters) {
    if (c.modalTruthPhase != 1 || !c.folded) continue;
    const auto it = r.regions.find(c.clusterId);
    ASSERT_NE(it, r.regions.end());
    EXPECT_EQ(it->second.segments.size(), 3u);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Summary, SectionsCanBeDisabled) {
  ReportOptions options;
  options.includeImbalance = false;
  options.includeEvolution = false;
  options.includeRegions = false;
  const auto r = buildReport(testutil::smallWavesimRun().trace, options);
  EXPECT_TRUE(r.imbalance.empty());
  EXPECT_TRUE(r.evolution.empty());
  EXPECT_TRUE(r.regions.empty());
}

TEST(Summary, PrintContainsEverySection) {
  const auto& r = sharedReport();
  std::ostringstream os;
  printReport(r, testutil::smallWavesimRun().trace, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("computation phases"), std::string::npos);
  EXPECT_NE(text.find("load balance"), std::string::npos);
  EXPECT_NE(text.find("cross-run evolution"), std::string::npos);
  EXPECT_NE(text.find("code-region structure"), std::string::npos);
  EXPECT_NE(text.find("representative window"), std::string::npos);
  EXPECT_NE(text.find("SPMD-ness"), std::string::npos);
  EXPECT_NE(text.find("spectral"), std::string::npos);
}

}  // namespace
}  // namespace unveil::analysis
