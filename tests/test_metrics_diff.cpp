/// Tests for the telemetry-diff analyzer (metrics_diff.hpp): stage
/// alignment, gating vs informational categories, noise floors and the
/// error paths for unreadable/malformed inputs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include "unveil/analysis/metrics_diff.hpp"
#include "unveil/support/error.hpp"

namespace unveil::analysis {
namespace {

/// Writes \p json to a per-test temp file and returns its path.
std::string writeDump(const std::string& tag, const std::string& json) {
  const std::string path = ::testing::TempDir() + "/unveil_mdiff_" + tag +
                           "." + std::to_string(::getpid()) + ".json";
  std::ofstream f(path, std::ios::trunc);
  f << json;
  return path;
}

/// A minimal but complete metrics dump. Values are parameterized so tests
/// can inject regressions into the B side only.
std::string dumpJson(double clusterNs, double cpuNs, double rssPeak,
                     double hwmDeltaKb, double neighborQueries) {
  std::ostringstream os;
  os << "{\n"
     << "  \"spans\": {\n"
     << "    \"pipeline.cluster\": {\"count\": 1, \"total_ns\": " << clusterNs
     << ", \"mean_ns\": " << clusterNs << "},\n"
     << "    \"pipeline.fold\": {\"count\": 1, \"total_ns\": 5000000, "
        "\"mean_ns\": 5000000}\n"
     << "  },\n"
     << "  \"counters\": {\n"
     << "    \"cluster.neighbor_queries\": " << neighborQueries << ",\n"
     << "    \"stage.cpu_ns.cluster\": " << cpuNs << "\n"
     << "  },\n"
     << "  \"gauges\": {\"stage.hwm_delta_kb.cluster\": " << hwmDeltaKb
     << "},\n"
     << "  \"sampler\": {\"samples\": 12, \"utilization_pct\": 50.0, "
        "\"queue_depth\": {\"p50\": 1, \"p95\": 3, \"max\": 4}, "
        "\"rss_peak_bytes\": "
     << rssPeak << "},\n"
     << "  \"stage_resources\": {\"pipeline.cluster\": {\"samples\": 6, "
        "\"utilization_pct\": 80.0, \"queue_depth\": {\"p50\": 2, \"p95\": "
        "3, \"max\": 4}, \"rss_peak_bytes\": "
     << rssPeak << "}}\n"
     << "}\n";
  return os.str();
}

std::string baselineDump(const std::string& tag) {
  // 50 ms cluster stage, 80 ms CPU, 64 MiB peak RSS, 2 MiB stage HWM push.
  return writeDump(tag, dumpJson(50e6, 80e6, 64.0 * (1 << 20), 2048, 1000));
}

TEST(MetricsDiff, SelfDiffHasNoRegressions) {
  const auto a = baselineDump("self_a");
  const auto report = diffMetricsFiles(a, a);
  EXPECT_EQ(report.regressions, 0u);
  for (const auto* set : {&report.wall, &report.cpu, &report.memory}) {
    for (const auto& d : *set) {
      EXPECT_DOUBLE_EQ(d.deltaPct, 0.0) << d.name;
      EXPECT_FALSE(d.regression) << d.name;
    }
  }
  // Every section of the dump was aligned.
  EXPECT_EQ(report.wall.size(), 2u);
  EXPECT_EQ(report.cpu.size(), 1u);
  EXPECT_FALSE(report.memory.empty());
  EXPECT_FALSE(report.counters.empty());
  EXPECT_FALSE(report.sampler.empty());
}

TEST(MetricsDiff, WallSlowdownPastThresholdFlags) {
  const auto a = baselineDump("wall_a");
  // Cluster stage 2x slower in B; everything else unchanged.
  const auto b = writeDump(
      "wall_b", dumpJson(100e6, 80e6, 64.0 * (1 << 20), 2048, 1000));
  const auto report = diffMetricsFiles(a, b);
  ASSERT_GE(report.regressions, 1u);
  bool found = false;
  for (const auto& d : report.wall) {
    if (d.name == "pipeline.cluster") {
      found = true;
      EXPECT_TRUE(d.regression);
      EXPECT_NEAR(d.deltaPct, 100.0, 1e-9);
    } else {
      EXPECT_FALSE(d.regression) << d.name;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsDiff, ThresholdIsConfigurable) {
  const auto a = baselineDump("thr_a");
  const auto b = writeDump(
      "thr_b", dumpJson(57e6, 80e6, 64.0 * (1 << 20), 2048, 1000));  // +14%
  EXPECT_GE(diffMetricsFiles(a, b).regressions, 1u);  // default 10%
  TelemetryDiffOptions loose;
  loose.thresholdPct = 20.0;
  EXPECT_EQ(diffMetricsFiles(a, b, loose).regressions, 0u);
}

TEST(MetricsDiff, WallNoiseFloorSuppressesTinySpans) {
  // 0.4 ms baseline tripling to 1.2 ms: huge relative delta, but below the
  // 1 ms floor — jitter, not a finding.
  const auto a = writeDump(
      "floor_a", dumpJson(0.4e6, 80e6, 64.0 * (1 << 20), 2048, 1000));
  const auto b = writeDump(
      "floor_b", dumpJson(1.2e6, 80e6, 64.0 * (1 << 20), 2048, 1000));
  const auto report = diffMetricsFiles(a, b);
  for (const auto& d : report.wall) EXPECT_FALSE(d.regression) << d.name;
  EXPECT_EQ(report.regressions, 0u);
}

TEST(MetricsDiff, CpuRegressionGates) {
  const auto a = baselineDump("cpu_a");
  const auto b = writeDump(
      "cpu_b", dumpJson(50e6, 120e6, 64.0 * (1 << 20), 2048, 1000));  // +50% CPU
  const auto report = diffMetricsFiles(a, b);
  ASSERT_EQ(report.cpu.size(), 1u);
  EXPECT_EQ(report.cpu[0].name, "stage.cpu_ns.cluster");
  EXPECT_TRUE(report.cpu[0].regression);
  EXPECT_GE(report.regressions, 1u);
}

TEST(MetricsDiff, MemoryUsesLooserThresholdAndFloor) {
  const auto a = baselineDump("mem_a");
  // +20% RSS: above the 10% wall threshold but below the 25% memory one.
  const auto mild = writeDump(
      "mem_mild", dumpJson(50e6, 80e6, 76.8 * (1 << 20), 2048, 1000));
  EXPECT_EQ(diffMetricsFiles(a, mild).regressions, 0u);
  // +50% RSS: past the memory threshold, baseline well above the 8 MiB floor.
  const auto bad = writeDump(
      "mem_bad", dumpJson(50e6, 80e6, 96.0 * (1 << 20), 2048, 1000));
  const auto report = diffMetricsFiles(a, bad);
  bool flagged = false;
  for (const auto& d : report.memory)
    if (d.regression) flagged = true;
  EXPECT_TRUE(flagged);
  EXPECT_GE(report.regressions, 1u);
  // The per-stage HWM gauge (2 MiB baseline, under the 8 MiB floor) must not
  // flag even when it grows: hwm_delta stayed equal here, but check the
  // floor with an explicit blowup.
  const auto hwm = writeDump(
      "mem_hwm", dumpJson(50e6, 80e6, 64.0 * (1 << 20), 6144, 1000));  // 3x
  EXPECT_EQ(diffMetricsFiles(a, hwm).regressions, 0u);
}

TEST(MetricsDiff, WorkCountersAreInformationalOnly) {
  const auto a = baselineDump("cnt_a");
  const auto b = writeDump(
      "cnt_b", dumpJson(50e6, 80e6, 64.0 * (1 << 20), 2048, 9000));  // 9x work
  const auto report = diffMetricsFiles(a, b);
  EXPECT_EQ(report.regressions, 0u);
  bool found = false;
  for (const auto& d : report.counters) {
    EXPECT_FALSE(d.regression) << d.name;
    if (d.name == "cluster.neighbor_queries") {
      found = true;
      EXPECT_NEAR(d.deltaPct, 800.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsDiff, SamplerStatsAreInformationalOnly) {
  const auto a = baselineDump("smp_a");
  const auto report = diffMetricsFiles(a, a);
  bool sawUtilization = false;
  for (const auto& d : report.sampler) {
    EXPECT_FALSE(d.regression) << d.name;
    if (d.name == "sampler.utilization_pct") sawUtilization = true;
  }
  EXPECT_TRUE(sawUtilization);
}

TEST(MetricsDiff, MetricMissingOnOneSideNeverFlags) {
  const auto a = baselineDump("miss_a");
  const auto b = writeDump("miss_b", R"({
    "spans": {"pipeline.newstage": {"count": 1, "total_ns": 99000000}},
    "counters": {}, "gauges": {}
  })");
  const auto report = diffMetricsFiles(a, b);
  // Old spans vanished (b side 0), a new one appeared (a side 0): both are
  // reported rows, neither gates.
  EXPECT_EQ(report.regressions, 0u);
  bool sawNew = false;
  for (const auto& d : report.wall)
    if (d.name == "pipeline.newstage") {
      sawNew = true;
      EXPECT_DOUBLE_EQ(d.a, 0.0);
      EXPECT_FALSE(d.regression);
    }
  EXPECT_TRUE(sawNew);
}

TEST(MetricsDiff, TableListsEveryCategory) {
  const auto a = baselineDump("tbl_a");
  const auto table = telemetryDiffTable(diffMetricsFiles(a, a));
  std::ostringstream os;
  table.print(os, "telemetry diff");
  const std::string text = os.str();
  for (const char* needle :
       {"wall", "cpu", "memory", "counter", "sampler", "pipeline.cluster",
        "stage.cpu_ns.cluster", "sampler.rss_peak_bytes"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(MetricsDiff, MissingFileThrowsWithPath) {
  const auto a = baselineDump("err_a");
  try {
    (void)diffMetricsFiles(a, "/nonexistent/metrics.json");
    FAIL() << "expected unveil::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/metrics.json"),
              std::string::npos)
        << e.what();
  }
}

TEST(MetricsDiff, MalformedJsonThrowsWithPath) {
  const auto a = baselineDump("bad_a");
  const auto bad = writeDump("bad_b", "{\"spans\": [unterminated");
  try {
    (void)diffMetricsFiles(a, bad);
    FAIL() << "expected unveil::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace unveil::analysis
