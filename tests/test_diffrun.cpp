/// Tests for run-to-run comparison.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "unveil/analysis/diffrun.hpp"
#include "unveil/analysis/experiments.hpp"
#include "unveil/cli/commands.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

class DiffFixture : public ::testing::Test {
 protected:
  static const RunDiff& sharedDiff() {
    static const RunDiff diff = [] {
      sim::apps::AppParams p;
      p.ranks = 4;
      p.iterations = 50;
      p.seed = 41;
      const auto mc = sim::MeasurementConfig::folding();
      const auto cfg = calibratedPipelineConfig(mc);
      const auto a = runMeasured("wavesim", p, mc);
      const auto b = runMeasured("wavesim-blocked", p, mc);
      return diffRuns(analyze(a.trace, cfg), analyze(b.trace, cfg));
    }();
    return diff;
  }
};

TEST_F(DiffFixture, PeriodsMatchAndAllPhasesPaired) {
  const auto& diff = sharedDiff();
  EXPECT_TRUE(diff.periodsMatch);
  EXPECT_EQ(diff.clusters.size(), 3u);
  EXPECT_TRUE(diff.unmatchedA.empty());
  EXPECT_TRUE(diff.unmatchedB.empty());
}

TEST_F(DiffFixture, SweepShowsTheOptimization) {
  const auto& diff = sharedDiff();
  // The sweep is the pair with the largest time share in A.
  const ClusterDelta* sweep = nullptr;
  for (const auto& row : diff.clusters)
    if (!sweep || row.timeShareA > sweep->timeShareA) sweep = &row;
  ASSERT_NE(sweep, nullptr);
  EXPECT_NEAR(sweep->durationDeltaPercent, -22.0, 6.0);
  EXPECT_GT(sweep->mipsDeltaPercent, 15.0);
  EXPECT_GT(sweep->ipcDeltaPercent, 10.0);
  // Internal shape changed substantially (overflow collapse removed).
  EXPECT_GT(sweep->profileDistancePercent, 15.0);
}

TEST_F(DiffFixture, UntouchedPhasesNearZero) {
  const auto& diff = sharedDiff();
  const ClusterDelta* sweep = nullptr;
  for (const auto& row : diff.clusters)
    if (!sweep || row.timeShareA > sweep->timeShareA) sweep = &row;
  for (const auto& row : diff.clusters) {
    if (&row == sweep) continue;
    EXPECT_NEAR(row.durationDeltaPercent, 0.0, 3.0);
    EXPECT_NEAR(row.mipsDeltaPercent, 0.0, 3.0);
    EXPECT_LT(row.profileDistancePercent, 8.0);
  }
}

TEST_F(DiffFixture, TableShape) {
  const auto table = diffTable(sharedDiff());
  EXPECT_EQ(table.rows(), sharedDiff().clusters.size());
  EXPECT_EQ(table.cols(), 8u);
}

TEST(Diff, IdenticalRunsShowNoDeltas) {
  const auto& run = testutil::smallWavesimRun();
  const auto r = analyze(run.trace);
  const auto diff = diffRuns(r, r);
  EXPECT_TRUE(diff.periodsMatch);
  for (const auto& row : diff.clusters) {
    EXPECT_DOUBLE_EQ(row.durationDeltaPercent, 0.0);
    EXPECT_DOUBLE_EQ(row.mipsDeltaPercent, 0.0);
    if (row.profileDistancePercent >= 0.0) {
      EXPECT_NEAR(row.profileDistancePercent, 0.0, 1e-9);
    }
  }
}

TEST(Diff, FallbackWithoutPeriods) {
  PipelineResult a, b;  // empty: period 0
  const auto diff = diffRuns(a, b);
  EXPECT_FALSE(diff.periodsMatch);
  EXPECT_TRUE(diff.clusters.empty());
}

// Byte-for-byte regression guard for the matcher refactor: `unveil diff`
// output captured before the modal-position logic moved to analysis/match
// must be reproduced exactly by the shared implementation. Note the table
// rows carry trailing padding spaces — they are part of the contract.
TEST(Diff, CliOutputMatchesGolden) {
  const std::string golden =
      "== run comparison (B relative to A) ==\n"
      "position  cluster A  cluster B  duration delta (%)  MIPS delta (%)  "
      "IPC delta (%)  profile distance (%)  time share A->B (%)\n"
      "------------------------------------------------------------------------"
      "----------------------------------------------------\n"
      "0         0          0          -0.6923             -0.2775         "
      "-0.0917        7.6384                5.2 -> 6.3         \n"
      "1         1          2          -24.8545            26.2067         "
      "22.7088        28.0998               73.6 -> 67.0       \n"
      "2         2          1          0.3414              0.2062          "
      "-0.2844        4.3723                20.2 -> 25.2       \n"
      "total runtime: 0.122014 s -> 0.0984128 s (-19.3427%)\n";

  const std::string dir = ::testing::TempDir();
  const std::string a =
      dir + "/diff_golden_a." + std::to_string(getpid()) + ".uvtb";
  const std::string b =
      dir + "/diff_golden_b." + std::to_string(getpid()) + ".uvtb";
  std::ostringstream sink;
  ASSERT_EQ(cli::runCli({"simulate", "--app", "wavesim", "--ranks", "4",
                         "--iterations", "40", "--seed", "41", "--out", a,
                         "--binary", "--no-telemetry", "--quiet"},
                        sink),
            0);
  ASSERT_EQ(cli::runCli({"simulate", "--app", "wavesim-blocked", "--ranks", "4",
                         "--iterations", "40", "--seed", "41", "--out", b,
                         "--binary", "--no-telemetry", "--quiet"},
                        sink),
            0);
  std::ostringstream out;
  ASSERT_EQ(cli::runCli({"diff", "--trace", a, "--trace-b", b, "--no-telemetry",
                         "--quiet"},
                        out),
            0);
  EXPECT_EQ(out.str(), golden);
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

}  // namespace
}  // namespace unveil::analysis
