/// Tests for run-to-run comparison.

#include <gtest/gtest.h>

#include "unveil/analysis/diffrun.hpp"
#include "unveil/analysis/experiments.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

class DiffFixture : public ::testing::Test {
 protected:
  static const RunDiff& sharedDiff() {
    static const RunDiff diff = [] {
      sim::apps::AppParams p;
      p.ranks = 4;
      p.iterations = 50;
      p.seed = 41;
      const auto mc = sim::MeasurementConfig::folding();
      const auto cfg = calibratedPipelineConfig(mc);
      const auto a = runMeasured("wavesim", p, mc);
      const auto b = runMeasured("wavesim-blocked", p, mc);
      return diffRuns(analyze(a.trace, cfg), analyze(b.trace, cfg));
    }();
    return diff;
  }
};

TEST_F(DiffFixture, PeriodsMatchAndAllPhasesPaired) {
  const auto& diff = sharedDiff();
  EXPECT_TRUE(diff.periodsMatch);
  EXPECT_EQ(diff.clusters.size(), 3u);
  EXPECT_TRUE(diff.unmatchedA.empty());
  EXPECT_TRUE(diff.unmatchedB.empty());
}

TEST_F(DiffFixture, SweepShowsTheOptimization) {
  const auto& diff = sharedDiff();
  // The sweep is the pair with the largest time share in A.
  const ClusterDelta* sweep = nullptr;
  for (const auto& row : diff.clusters)
    if (!sweep || row.timeShareA > sweep->timeShareA) sweep = &row;
  ASSERT_NE(sweep, nullptr);
  EXPECT_NEAR(sweep->durationDeltaPercent, -22.0, 6.0);
  EXPECT_GT(sweep->mipsDeltaPercent, 15.0);
  EXPECT_GT(sweep->ipcDeltaPercent, 10.0);
  // Internal shape changed substantially (overflow collapse removed).
  EXPECT_GT(sweep->profileDistancePercent, 15.0);
}

TEST_F(DiffFixture, UntouchedPhasesNearZero) {
  const auto& diff = sharedDiff();
  const ClusterDelta* sweep = nullptr;
  for (const auto& row : diff.clusters)
    if (!sweep || row.timeShareA > sweep->timeShareA) sweep = &row;
  for (const auto& row : diff.clusters) {
    if (&row == sweep) continue;
    EXPECT_NEAR(row.durationDeltaPercent, 0.0, 3.0);
    EXPECT_NEAR(row.mipsDeltaPercent, 0.0, 3.0);
    EXPECT_LT(row.profileDistancePercent, 8.0);
  }
}

TEST_F(DiffFixture, TableShape) {
  const auto table = diffTable(sharedDiff());
  EXPECT_EQ(table.rows(), sharedDiff().clusters.size());
  EXPECT_EQ(table.cols(), 8u);
}

TEST(Diff, IdenticalRunsShowNoDeltas) {
  const auto& run = testutil::smallWavesimRun();
  const auto r = analyze(run.trace);
  const auto diff = diffRuns(r, r);
  EXPECT_TRUE(diff.periodsMatch);
  for (const auto& row : diff.clusters) {
    EXPECT_DOUBLE_EQ(row.durationDeltaPercent, 0.0);
    EXPECT_DOUBLE_EQ(row.mipsDeltaPercent, 0.0);
    if (row.profileDistancePercent >= 0.0) {
      EXPECT_NEAR(row.profileDistancePercent, 0.0, 1e-9);
    }
  }
}

TEST(Diff, FallbackWithoutPeriods) {
  PipelineResult a, b;  // empty: period 0
  const auto diff = diffRuns(a, b);
  EXPECT_FALSE(diff.periodsMatch);
  EXPECT_TRUE(diff.clusters.empty());
}

}  // namespace
}  // namespace unveil::analysis
