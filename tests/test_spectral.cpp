/// Tests for signal-based (autocorrelation) period detection.

#include <gtest/gtest.h>

#include <cmath>

#include "unveil/analysis/spectral.hpp"
#include "unveil/support/error.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

TEST(SpectralParams, Validation) {
  SpectralParams p;
  p.stepNs = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = SpectralParams{};
  p.maxLagFraction = 0.6;
  EXPECT_THROW(p.validate(), ConfigError);
  p = SpectralParams{};
  p.minProminence = 2.5;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ComputeSignal, FractionalOccupancy) {
  trace::Trace t("x", 1);
  trace::StateInterval iv;
  iv.rank = 0;
  iv.state = trace::State::Compute;
  iv.begin = 0;
  iv.end = 150;  // covers bin 0 fully, bin 1 half (step 100)
  t.addState(iv);
  t.setDurationNs(400);
  t.finalize();
  SpectralParams p;
  p.stepNs = 100.0;
  const auto signal = computeSignal(t, 0, p);
  ASSERT_EQ(signal.size(), 4u);
  EXPECT_NEAR(signal[0], 1.0, 1e-9);
  EXPECT_NEAR(signal[1], 0.5, 1e-9);
  EXPECT_NEAR(signal[2], 0.0, 1e-9);
}

TEST(ComputeSignal, NoComputeStatesRejected) {
  trace::Trace t("x", 1);
  t.setDurationNs(1000);
  t.finalize();
  EXPECT_THROW((void)computeSignal(t, 0), AnalysisError);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> signal;
  for (int i = 0; i < 400; ++i)
    signal.push_back(std::sin(2.0 * M_PI * i / 20.0) > 0.0 ? 1.0 : 0.0);
  const auto ac = autocorrelation(signal, 60);
  // Lag 20 (index 19) should be a strong peak; lag 10 a strong trough.
  EXPECT_GT(ac[19], 0.8);
  EXPECT_LT(ac[9], -0.5);
}

TEST(Autocorrelation, ConstantSignalIsZero) {
  const std::vector<double> signal(100, 0.7);
  const auto ac = autocorrelation(signal, 20);
  for (double v : ac) EXPECT_EQ(v, 0.0);
}

TEST(Autocorrelation, TooShortRejected) {
  const std::vector<double> signal = {1.0, 0.0};
  EXPECT_THROW((void)autocorrelation(signal, 1), AnalysisError);
}

TEST(SpectralPeriod, SyntheticSquareWave) {
  // 50 iterations of 1 ms compute + 0.25 ms gap.
  trace::Trace t("x", 1);
  trace::TimeNs now = 0;
  for (int i = 0; i < 50; ++i) {
    trace::StateInterval iv;
    iv.rank = 0;
    iv.state = trace::State::Compute;
    iv.begin = now;
    iv.end = now + 1'000'000;
    t.addState(iv);
    now += 1'250'000;
  }
  t.setDurationNs(now);
  t.finalize();
  const auto result = detectSpectralPeriod(t, 0);
  EXPECT_GT(result.correlation, 0.3);
  EXPECT_NEAR(result.periodNs, 1'250'000.0, 100'000.0);
}

TEST(SpectralPeriod, MatchesIterationTimeOnSimulatedRun) {
  const auto& run = testutil::smallWavesimRun();
  const auto result = detectSpectralPeriod(run.trace, 0);
  ASSERT_GT(result.periodNs, 0.0);
  // True iteration time: runtime / iterations (40 iterations in the shared
  // run). Allow 15% tolerance — collectives and noise blur the signal.
  const double trueIter = static_cast<double>(run.totalRuntimeNs) / 40.0;
  EXPECT_NEAR(result.periodNs, trueIter, trueIter * 0.15);
}

TEST(SpectralPeriod, AperiodicSignalFindsNothing) {
  // One long compute block: no repeating structure.
  trace::Trace t("x", 1);
  trace::StateInterval iv;
  iv.rank = 0;
  iv.state = trace::State::Compute;
  iv.begin = 0;
  iv.end = 50'000'000;
  t.addState(iv);
  t.setDurationNs(100'000'000);
  t.finalize();
  const auto result = detectSpectralPeriod(t, 0);
  EXPECT_EQ(result.periodNs, 0.0);
}

}  // namespace
}  // namespace unveil::analysis
