/// Tests for the postal-model interconnect.

#include <gtest/gtest.h>

#include "unveil/sim/network.hpp"
#include "unveil/support/error.hpp"

namespace unveil::sim {
namespace {

TEST(Network, ValidateRejectsBadValues) {
  NetworkModel n;
  n.latencyNs = -1.0;
  EXPECT_THROW(n.validate(), ConfigError);
  n = NetworkModel{};
  n.bandwidthBytesPerNs = 0.0;
  EXPECT_THROW(n.validate(), ConfigError);
  n = NetworkModel{};
  n.sendOverheadNs = -5.0;
  EXPECT_THROW(n.validate(), ConfigError);
  EXPECT_NO_THROW(NetworkModel{}.validate());
}

TEST(Network, TransferIsLatencyPlusSerialization) {
  NetworkModel n;
  n.latencyNs = 1000.0;
  n.bandwidthBytesPerNs = 10.0;
  EXPECT_DOUBLE_EQ(n.transferNs(0), 1000.0);
  EXPECT_DOUBLE_EQ(n.transferNs(100), 1010.0);
  EXPECT_DOUBLE_EQ(n.transferNs(10000), 2000.0);
}

TEST(Network, SendCostIncludesOverhead) {
  NetworkModel n;
  n.sendOverheadNs = 300.0;
  n.bandwidthBytesPerNs = 10.0;
  EXPECT_DOUBLE_EQ(n.sendCostNs(1000), 400.0);
}

TEST(Network, CollectiveScalesLogarithmically) {
  NetworkModel n;
  const double p2 = n.collectiveCostNs(trace::MpiOp::Allreduce, 8, 2);
  const double p16 = n.collectiveCostNs(trace::MpiOp::Allreduce, 8, 16);
  const double p17 = n.collectiveCostNs(trace::MpiOp::Allreduce, 8, 17);
  EXPECT_NEAR(p16 / p2, 4.0, 1e-9);        // log2(16)/log2(2)
  EXPECT_NEAR(p17 / p16, 5.0 / 4.0, 1e-9); // ceil(log2 17) = 5 steps
}

TEST(Network, BarrierIgnoresBytes) {
  NetworkModel n;
  EXPECT_DOUBLE_EQ(n.collectiveCostNs(trace::MpiOp::Barrier, 0, 8),
                   n.collectiveCostNs(trace::MpiOp::Barrier, 1 << 20, 8));
}

TEST(Network, AlltoallGrowsWithRanks) {
  NetworkModel n;
  const double p4 = n.collectiveCostNs(trace::MpiOp::Alltoall, 4096, 4);
  const double p32 = n.collectiveCostNs(trace::MpiOp::Alltoall, 4096, 32);
  EXPECT_GT(p32, p4);
}

TEST(Network, SingleRankCollectiveFinite) {
  NetworkModel n;
  EXPECT_GT(n.collectiveCostNs(trace::MpiOp::Allreduce, 8, 1), 0.0);
}

}  // namespace
}  // namespace unveil::sim
