/// Tests for rate reconstruction and the smoothing helper.

#include <gtest/gtest.h>

#include "unveil/cluster/burst.hpp"
#include "unveil/folding/rate.hpp"
#include "unveil/support/rng.hpp"
#include "test_util.hpp"

namespace unveil::folding {
namespace {

FoldedCounter linearCloud(std::size_t n) {
  support::Rng rng(5, "rate");
  FoldedCounter f;
  f.counter = counters::CounterId::TotIns;
  f.instances = n;
  f.meanDurationNs = 1e6;   // 1 ms
  f.meanTotal = 2e6;        // 2M instructions -> 2 ins/ns -> 2000 MIPS
  for (std::size_t i = 0; i < n; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = p.t;
    f.points.push_back(p);
  }
  f.points.sortCanonical();
  return f;
}

TEST(Rate, PhysicalScaling) {
  const auto cloud = linearCloud(2000);
  const auto fit = fitCumulative(cloud, FitParams{});
  const auto curve = reconstructRate(cloud, *fit, 101);
  ASSERT_EQ(curve.t.size(), 101u);
  EXPECT_EQ(curve.sourcePoints, 2000u);
  EXPECT_EQ(curve.sourceInstances, 2000u);
  // Flat profile at mean rate 2 counts/ns.
  for (std::size_t i = 10; i < 91; ++i) {
    EXPECT_NEAR(curve.normRate[i], 1.0, 0.1);
    EXPECT_NEAR(curve.physRate[i], 2.0, 0.2);
  }
  const auto mips = curve.ratePerMicrosecond();
  EXPECT_NEAR(mips[50], 2000.0, 200.0);
}

TEST(Rate, NegativeDerivativesClampedInPhysOnly) {
  // Construct a fit whose derivative is negative somewhere by using the
  // kernel on adversarial data, then check the clamping contract.
  support::Rng rng(9, "neg");
  FoldedCounter f;
  f.meanDurationNs = 1000.0;
  f.meanTotal = 1000.0;
  for (std::size_t i = 0; i < 200; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = (p.t < 0.5) ? 0.9 * p.t * 2.0 : 0.9 - (p.t - 0.5) * 0.5;  // dips down
    f.points.push_back(p);
  }
  f.points.sortCanonical();
  FitParams params;
  params.method = FitMethod::Kernel;
  const auto fit = fitCumulative(f, params);
  const auto curve = reconstructRate(f, *fit, 201);
  bool sawNegativeNorm = false;
  for (std::size_t i = 0; i < curve.t.size(); ++i) {
    if (curve.normRate[i] < 0.0) sawNegativeNorm = true;
    EXPECT_GE(curve.physRate[i], 0.0);
  }
  EXPECT_TRUE(sawNegativeNorm);  // norm keeps the raw derivative for ablations
}

TEST(MovingAverage, PreservesConstant) {
  std::vector<double> v(50, 3.0);
  movingAverage(v, 9);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(MovingAverage, SmoothsSpike) {
  std::vector<double> v(21, 0.0);
  v[10] = 10.0;
  movingAverage(v, 5);
  EXPECT_NEAR(v[10], 2.0, 1e-12);  // spread over 5 points
  EXPECT_NEAR(v[8], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(MovingAverage, WindowBelowThreeIsNoop) {
  std::vector<double> v = {1.0, 5.0, 1.0};
  auto copy = v;
  movingAverage(v, 1);
  EXPECT_EQ(v, copy);
  movingAverage(v, 0);
  EXPECT_EQ(v, copy);
}

TEST(MovingAverage, EvenWindowRoundsDown) {
  std::vector<double> a = {0, 0, 6, 0, 0, 0};
  std::vector<double> b = a;
  movingAverage(a, 4);  // effective 3
  movingAverage(b, 3);
  EXPECT_EQ(a, b);
}

TEST(MovingAverage, MatchesQuadraticReference) {
  // The prefix-sum implementation must agree with the textbook O(n·window)
  // loop (shrinking windows at the edges included) to rounding error.
  support::Rng rng(17, "ma");
  for (std::size_t window : {3u, 5u, 9u, 15u, 51u}) {
    std::vector<double> v(137);
    for (double& x : v) x = rng.uniform(0.0, 10.0);
    std::vector<double> ref = v;
    {
      std::size_t w = window % 2 == 0 ? window - 1 : window;
      const std::size_t half = w / 2;
      const std::vector<double> src = ref;
      for (std::size_t i = 0; i < src.size(); ++i) {
        const std::size_t lo = i >= half ? i - half : 0;
        const std::size_t hi = std::min(i + half, src.size() - 1);
        double s = 0.0;
        for (std::size_t j = lo; j <= hi; ++j) s += src[j];
        ref[i] = s / static_cast<double>(hi - lo + 1);
      }
    }
    movingAverage(v, window);
    for (std::size_t i = 0; i < v.size(); ++i)
      EXPECT_NEAR(v[i], ref[i], 1e-10) << "window " << window << " i " << i;
  }
}

TEST(Rate, EndToEndClusterReconstruction) {
  const auto& run = testutil::smallWavesimRun();
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(run.trace);
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < bursts.size(); ++i)
    if (bursts[i].truthPhase == 2) members.push_back(i);  // pointwise update

  const auto curve = reconstructClusterRate(run.trace, bursts, members,
                                            counters::CounterId::TotIns);
  ASSERT_FALSE(curve.physRate.empty());
  // The update phase is flat at ~2600 MIPS = 2.6 counts/ns.
  const auto mips = curve.ratePerMicrosecond();
  double lo = 1e18, hi = 0.0;
  for (std::size_t i = 20; i < mips.size() - 20; ++i) {
    lo = std::min(lo, mips[i]);
    hi = std::max(hi, mips[i]);
  }
  EXPECT_GT(lo, 2000.0);
  EXPECT_LT(hi, 3100.0);
}

}  // namespace
}  // namespace unveil::folding
