/// Tests for the shared work-stealing pool: exactly-once index dispatch,
/// deterministic exception propagation, nested submission from workers,
/// shutdown under load, and telemetry span re-parenting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::support {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kJobs = 10'000;
    std::vector<std::atomic<int>> hits(kJobs);
    pool.parallelFor(kJobs, [&](std::size_t j) {
      hits[j].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t j = 0; j < kJobs; ++j)
      ASSERT_EQ(hits[j].load(), 1) << "threads=" << threads << " j=" << j;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallelFor(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  auto f = pool.submit([&] { return std::this_thread::get_id(); });
  EXPECT_EQ(f.get(), caller);
}

TEST(ThreadPool, ParallelForChunksCoversRangeOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTotal = 12'345;
  std::vector<std::atomic<int>> hits(kTotal);
  pool.parallelForChunks(kTotal, 100, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTotal; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexError) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::atomic<std::size_t> executed{0};
    try {
      pool.parallelFor(64, [&](std::size_t j) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (j == 7 || j == 40) throw std::runtime_error("boom " + std::to_string(j));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // No cancellation: all jobs ran, and the lowest failing index wins
      // regardless of which worker hit it first.
      EXPECT_STREQ(e.what(), "boom 7");
    }
    EXPECT_EQ(executed.load(), 64u);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw ConfigError("bad task"); });
  EXPECT_THROW((void)f.get(), ConfigError);
}

TEST(ThreadPool, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  // Outer jobs outnumber workers, and each opens an inner loop: the caller-
  // participates rule is what keeps this from deadlocking.
  pool.parallelFor(16, [&](std::size_t) {
    pool.parallelFor(32, [&](std::size_t j) {
      total.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16u * (31u * 32u / 2u));
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 21; });
    return inner.get() * 2;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::vector<std::future<int>> futures;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.submit([&ran, i] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
        return i;
      }));
    }
    // Destructor runs with most tasks still queued.
  }
  EXPECT_EQ(ran.load(), 200);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ParallelForReparentsWorkerSpans) {
  telemetry::Session session;
  session.activate();
  ThreadPool pool(4);
  std::uint64_t stageId = 0;
  {
    telemetry::Span stage("test.stage");
    stageId = stage.id();
    pool.parallelFor(64, [&](std::size_t) {
      const telemetry::Span job("test.job");
      (void)job;
    });
  }
  session.deactivate();
  const auto snap = session.snapshot();
  ASSERT_NE(stageId, 0u);
  std::size_t jobs = 0;
  for (const auto& s : snap.spans) {
    if (s.name != "test.job") continue;
    ++jobs;
    // Helper-worker spans must hang off the dispatching stage span, not
    // float as roots.
    EXPECT_EQ(s.parentId, stageId);
  }
  EXPECT_EQ(jobs, 64u);
}

TEST(ThreadPool, GlobalPoolHonorsConfiguredSize) {
  setGlobalThreads(3);
  EXPECT_EQ(globalThreadCount(), 3u);
  EXPECT_EQ(globalPool().threads(), 3u);
  setGlobalThreads(0);  // back to automatic for the rest of the suite
  EXPECT_GE(globalThreadCount(), 1u);
}

TEST(ThreadPool, EmptyLoopIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallelFor(0, [&](std::size_t) { called = true; });
  pool.parallelForChunks(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace unveil::support
