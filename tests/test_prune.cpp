/// Tests for MAD outlier pruning of folded clouds.

#include <gtest/gtest.h>

#include "unveil/folding/prune.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::folding {
namespace {

FoldedCounter makeCloud(std::size_t n, double noise, std::uint64_t seed = 1) {
  support::Rng rng(seed, "prune");
  FoldedCounter f;
  f.instances = n;
  for (std::size_t i = 0; i < n; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = p.t + rng.normal(0.0, noise);
    f.points.push_back(p);
  }
  return f;
}

TEST(PruneParams, Validation) {
  PruneParams p;
  p.bins = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = PruneParams{};
  p.madK = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = PruneParams{};
  p.minSigma = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Prune, CleanCloudUntouched) {
  const auto cloud = makeCloud(500, 0.002);
  const auto result = pruneOutliers(cloud);
  EXPECT_EQ(result.removed, 0u);
  EXPECT_EQ(result.pruned.points.size(), 500u);
}

TEST(Prune, InjectedOutliersRemoved) {
  auto cloud = makeCloud(500, 0.002);
  // Inject 10 gross outliers.
  for (int i = 0; i < 10; ++i) {
    FoldedPoint p;
    p.t = 0.5 + 0.01 * i;
    p.y = 0.0;  // wildly below the y ~ t trend
    cloud.points.push_back(p);
  }
  const auto result = pruneOutliers(cloud);
  EXPECT_GE(result.removed, 9u);
  EXPECT_LE(result.removed, 15u);  // almost nothing else removed
}

TEST(Prune, KeepsStatisticsFields) {
  auto cloud = makeCloud(100, 0.001);
  cloud.meanDurationNs = 777.0;
  cloud.meanTotal = 888.0;
  cloud.instances = 42;
  const auto result = pruneOutliers(cloud);
  EXPECT_EQ(result.pruned.meanDurationNs, 777.0);
  EXPECT_EQ(result.pruned.meanTotal, 888.0);
  EXPECT_EQ(result.pruned.instances, 42u);
}

TEST(Prune, EmptyCloudOk) {
  FoldedCounter f;
  const auto result = pruneOutliers(f);
  EXPECT_EQ(result.removed, 0u);
  EXPECT_TRUE(result.pruned.points.empty());
}

TEST(Prune, TinyBinsLeftAlone) {
  // 3 points in one bin: below the 4-point threshold, nothing is pruned even
  // though one point is extreme.
  FoldedCounter f;
  for (double y : {0.5, 0.51, 5.0}) {
    FoldedPoint p;
    p.t = 0.5;
    p.y = y;
    f.points.push_back(p);
  }
  const auto result = pruneOutliers(f);
  EXPECT_EQ(result.removed, 0u);
}

TEST(Prune, LooseThresholdKeepsMore) {
  auto cloud = makeCloud(400, 0.01);
  for (int i = 0; i < 20; ++i) {
    FoldedPoint p;
    p.t = 0.3;
    p.y = 0.9;  // moderate outliers
    cloud.points.push_back(p);
  }
  PruneParams strict;
  strict.madK = 3.0;
  PruneParams loose;
  loose.madK = 100.0;
  EXPECT_GT(pruneOutliers(cloud, strict).removed,
            pruneOutliers(cloud, loose).removed);
}

}  // namespace
}  // namespace unveil::folding
