/// Tests for derived intra-phase metrics (instantaneous IPC, per-kIns).

#include <gtest/gtest.h>

#include "unveil/folding/derived.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"

namespace unveil::folding {
namespace {

RateCurve flatCurve(double physRate, std::size_t n = 11) {
  RateCurve c;
  c.t = support::linspace(0.0, 1.0, n);
  c.normRate.assign(n, 1.0);
  c.physRate.assign(n, physRate);
  return c;
}

TEST(DerivedIpc, RatioOfRates) {
  const auto ins = flatCurve(2.0);   // 2 ins/ns
  const auto cyc = flatCurve(2.5);   // 2.5 cyc/ns
  const auto ipc = instantaneousIpc(ins, cyc);
  ASSERT_EQ(ipc.t.size(), 11u);
  for (double v : ipc.value) EXPECT_NEAR(v, 0.8, 1e-12);
}

TEST(DerivedIpc, ZeroCycleRateClamped) {
  const auto ins = flatCurve(2.0);
  auto cyc = flatCurve(0.0);
  const auto ipc = instantaneousIpc(ins, cyc);
  for (double v : ipc.value) EXPECT_EQ(v, 0.0);
}

TEST(DerivedIpc, VaryingProfile) {
  auto ins = flatCurve(2.0, 101);
  const auto cyc = flatCurve(2.0, 101);
  // Instructions decay linearly; cycles stay flat -> IPC decays linearly.
  for (std::size_t i = 0; i < ins.t.size(); ++i)
    ins.physRate[i] = 3.0 - 2.0 * ins.t[i];
  const auto ipc = instantaneousIpc(ins, cyc);
  EXPECT_NEAR(ipc.value.front(), 1.5, 1e-12);
  EXPECT_NEAR(ipc.value.back(), 0.5, 1e-12);
}

TEST(DerivedPerKiloIns, Scaling) {
  const auto misses = flatCurve(0.004);  // 0.004 misses/ns
  const auto ins = flatCurve(2.0);       // 2 ins/ns
  const auto mpki = instantaneousPerKiloIns(misses, ins);
  for (double v : mpki.value) EXPECT_NEAR(v, 2.0, 1e-12);  // 2 per kIns
}

TEST(Derived, GridMismatchRejected) {
  const auto a = flatCurve(1.0, 11);
  const auto b = flatCurve(1.0, 21);
  EXPECT_THROW((void)instantaneousIpc(a, b), ConfigError);
  EXPECT_THROW((void)instantaneousPerKiloIns(a, b), ConfigError);
}

TEST(Derived, EmptyGridRejected) {
  RateCurve empty;
  EXPECT_THROW((void)instantaneousIpc(empty, empty), ConfigError);
}

}  // namespace
}  // namespace unveil::folding
