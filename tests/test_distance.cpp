/// Tests for the shared squared-distance kernel (cluster/distance.hpp):
/// batch forms must match the scalar reference bit-for-bit on whichever
/// SIMD path support::simdLevel() dispatched, including ragged tails and
/// non-finite feature values.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "unveil/cluster/distance.hpp"
#include "unveil/cluster/features.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::cluster {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

::testing::AssertionResult bitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

FeatureMatrix makeMatrix(std::size_t rows, std::size_t dims,
                         std::uint64_t seed) {
  support::Rng rng(seed, "distance-matrix");
  FeatureMatrix m(rows, dims);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t k = 0; k < dims; ++k)
      m.at(r, k) = rng.uniform(-5.0, 5.0);
  return m;
}

TEST(Distance, ScalarMatchesTextbookDefinition) {
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const std::vector<double> r = {0.5, -1.0, 7.0};
  EXPECT_TRUE(bitEqual(distance2(q, r), 0.25 + 9.0 + 16.0));
  EXPECT_TRUE(bitEqual(distance2({}, {}), 0.0));
}

TEST(Distance, BatchMatchesScalarBitForBit) {
  // Counts cover the 4-lane body plus every tail length; dims cover the
  // z-scored feature space sizes the classifiers actually use.
  for (std::size_t dims : {1u, 2u, 4u, 5u, 9u}) {
    for (std::size_t rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 64u, 129u}) {
      const FeatureMatrix m = makeMatrix(rows, dims, 17);
      support::Rng rng(29, "distance-query");
      std::vector<double> q(dims);
      for (double& v : q) v = rng.uniform(-5.0, 5.0);

      std::vector<std::size_t> idx(rows);
      std::iota(idx.begin(), idx.end(), 0);
      // Shuffle so the gather form reads rows out of storage order.
      for (std::size_t i = rows; i > 1; --i)
        std::swap(idx[i - 1],
                  idx[static_cast<std::size_t>(rng.uniformInt(
                      0, static_cast<std::int64_t>(i) - 1))]);

      const double* base = m.row(0).data();
      std::vector<double> viaIdx(rows, -1.0);
      distance2Batch(q.data(), dims, base, m.dims(), idx.data(), rows,
                     viaIdx.data());
      std::vector<double> viaRows(rows, -1.0);
      distance2BatchRows(q.data(), dims, base, m.dims(), 0, rows,
                         viaRows.data());

      for (std::size_t i = 0; i < rows; ++i) {
        EXPECT_TRUE(bitEqual(viaIdx[i], distance2(q, m.row(idx[i]))))
            << "dims=" << dims << " rows=" << rows << " i=" << i;
        EXPECT_TRUE(bitEqual(viaRows[i], distance2(q, m.row(i))))
            << "dims=" << dims << " rows=" << rows << " i=" << i;
      }
    }
  }
}

TEST(Distance, BatchRowsHonorsFirstRowOffset) {
  const FeatureMatrix m = makeMatrix(10, 3, 5);
  const std::vector<double> q = {0.25, -0.5, 1.5};
  double out[4];
  distance2BatchRows(q.data(), 3, m.row(0).data(), m.dims(), 6, 4, out);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_TRUE(bitEqual(out[i], distance2(q, m.row(6 + i)))) << "i=" << i;
}

TEST(Distance, WithinRelativeToleranceOfReference) {
  // The gate's stated contract for the distance kernels is a <1e-12
  // relative error versus an independent (reverse-order) accumulation;
  // bit-identity to the forward scalar loop is the stronger property
  // asserted above, this pins the tolerance wording explicitly.
  const std::size_t dims = 9, rows = 257;
  const FeatureMatrix m = makeMatrix(rows, dims, 101);
  support::Rng rng(7, "distance-tolerance");
  std::vector<double> q(dims);
  for (double& v : q) v = rng.uniform(-5.0, 5.0);

  std::vector<double> out(rows);
  distance2BatchRows(q.data(), dims, m.row(0).data(), m.dims(), 0, rows,
                     out.data());
  for (std::size_t i = 0; i < rows; ++i) {
    double ref = 0.0;
    const auto r = m.row(i);
    for (std::size_t k = dims; k-- > 0;) {
      const double diff = q[k] - r[k];
      ref += diff * diff;
    }
    ASSERT_GT(ref, 0.0);
    EXPECT_LT(std::abs(out[i] - ref) / ref, 1e-12) << "i=" << i;
  }
}

TEST(Distance, NonFinitePropagatesIdenticallyToScalar) {
  // NaN and inf features must come out of the batch forms exactly as the
  // scalar loop produces them: NaN anywhere -> NaN; inf - finite -> inf
  // squared -> inf; inf - inf -> NaN. No path may mask lanes or early-exit.
  FeatureMatrix m(6, 3);
  const double rowsInit[6][3] = {
      {1.0, 2.0, 3.0},    {kNan, 2.0, 3.0}, {1.0, kInf, 3.0},
      {1.0, 2.0, -kInf},  {kInf, kInf, kInf}, {4.0, 5.0, 6.0},
  };
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t k = 0; k < 3; ++k) m.at(r, k) = rowsInit[r][k];

  const std::vector<std::vector<double>> queries = {
      {0.0, 0.0, 0.0}, {kNan, 0.0, 0.0}, {kInf, kInf, kInf}};
  std::vector<std::size_t> idx = {0, 1, 2, 3, 4, 5};
  for (const auto& q : queries) {
    double viaIdx[6], viaRows[6];
    distance2Batch(q.data(), 3, m.row(0).data(), m.dims(), idx.data(), 6,
                   viaIdx);
    distance2BatchRows(q.data(), 3, m.row(0).data(), m.dims(), 0, 6, viaRows);
    for (std::size_t i = 0; i < 6; ++i) {
      const double ref = distance2(q, m.row(i));
      EXPECT_TRUE(bitEqual(viaIdx[i], ref)) << "i=" << i;
      EXPECT_TRUE(bitEqual(viaRows[i], ref)) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace unveil::cluster
