/// Tests for trace text serialization: exact round-trips and rejection of
/// malformed inputs (parameterized over corruption cases).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "unveil/support/error.hpp"
#include "unveil/trace/io.hpp"
#include "test_util.hpp"

namespace unveil::trace {
namespace {

Trace sampleTrace() {
  testutil::SyntheticSpec spec;
  spec.bursts = 5;
  spec.samplesPerBurst = 3;
  return testutil::makeSyntheticTrace(spec);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sampleTrace();
  std::stringstream ss;
  write(original, ss);
  const Trace back = read(ss);

  EXPECT_EQ(back.appName(), original.appName());
  EXPECT_EQ(back.numRanks(), original.numRanks());
  EXPECT_EQ(back.durationNs(), original.durationNs());
  ASSERT_EQ(back.events().size(), original.events().size());
  ASSERT_EQ(back.samples().size(), original.samples().size());
  ASSERT_EQ(back.states().size(), original.states().size());
  for (std::size_t i = 0; i < original.events().size(); ++i) {
    const auto& a = original.events()[i];
    const auto& b = back.events()[i];
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.counters, b.counters);
  }
  for (std::size_t i = 0; i < original.samples().size(); ++i) {
    EXPECT_EQ(original.samples()[i].time, back.samples()[i].time);
    EXPECT_EQ(original.samples()[i].counters, back.samples()[i].counters);
  }
}

TEST(TraceIo, RoundTripOfSimulatedRun) {
  const auto& run = testutil::smallWavesimRun();
  std::stringstream ss;
  write(run.trace, ss);
  const Trace back = read(ss);
  EXPECT_EQ(back.stats().totalRecords, run.trace.stats().totalRecords);
  EXPECT_EQ(back.durationNs(), run.trace.durationNs());
}

TEST(TraceIo, ReadIsFinalized) {
  std::stringstream ss;
  write(sampleTrace(), ss);
  EXPECT_TRUE(read(ss).finalized());
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sampleTrace();
  const std::string path = ::testing::TempDir() + "/unveil_io_test.trace";
  writeFile(original, path);
  const Trace back = readFile(path);
  EXPECT_EQ(back.stats().totalRecords, original.stats().totalRecords);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)readFile("/nonexistent/path/trace.txt"), Error);
}

struct BadInput {
  std::string name;
  std::string content;
};

class MalformedInput : public ::testing::TestWithParam<BadInput> {};

TEST_P(MalformedInput, Rejected) {
  std::istringstream is(GetParam().content);
  EXPECT_THROW((void)read(is), TraceError);
}

INSTANTIATE_TEST_SUITE_P(
    Corruptions, MalformedInput,
    ::testing::Values(
        BadInput{"missingHeader", "app x\nranks 1\nduration 10\n"},
        BadInput{"missingRanks", "#UNVEIL_TRACE v1\napp x\nduration 10\n"},
        BadInput{"zeroRanks", "#UNVEIL_TRACE v1\napp x\nranks 0\n"},
        BadInput{"unknownTag", "#UNVEIL_TRACE v1\nranks 1\nQ 0 1 2\n"},
        BadInput{"truncatedEvent",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\nE 0 5 0\n"},
        BadInput{"badEventKind",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\n"
                 "E 0 5 9 0 1 1 1 1 1 1\n"},
        BadInput{"missingCounters",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\nS 0 5 1 2 3\n"},
        BadInput{"badStateCode",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\nT 0 1 2 9\n"},
        BadInput{"wrongCounterColumns",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\n"
                 "counters PAPI_WRONG PAPI_TOT_CYC PAPI_L1_DCM PAPI_L2_DCM "
                 "PAPI_FP_OPS PAPI_BR_MSP\n"},
        BadInput{"eventBeyondDuration",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\n"
                 "E 0 50 0 0 1 1 1 1 1 1\n"},
        BadInput{"eventRankOutOfRange",
                 "#UNVEIL_TRACE v1\nranks 2\nduration 10\n"
                 "E 2 5 0 0 1 1 1 1 1 1\n"},
        BadInput{"sampleRankOutOfRange",
                 "#UNVEIL_TRACE v1\nranks 2\nduration 10\nS 7 5 1 2 3 4 5 6\n"},
        BadInput{"stateRankOutOfRange",
                 "#UNVEIL_TRACE v1\nranks 2\nduration 10\nT 2 1 2 0\n"},
        BadInput{"stateBeginAfterEnd",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\nT 0 8 2 0\n"},
        BadInput{"recordBeforeRanksLine",
                 "#UNVEIL_TRACE v1\nE 0 5 0 0 1 1 1 1 1 1\nranks 1\n"},
        BadInput{"trailingGarbageAfterEvent",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\n"
                 "E 0 5 0 0 1 1 1 1 1 1 junk\n"},
        BadInput{"trailingGarbageAfterSampleRegion",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\n"
                 "S 0 5 1 2 3 4 5 6 63 2 junk\n"},
        BadInput{"trailingGarbageAfterState",
                 "#UNVEIL_TRACE v1\nranks 1\nduration 10\nT 0 1 2 0 junk\n"}),
    [](const ::testing::TestParamInfo<BadInput>& info) { return info.param.name; });

TEST(TraceIo, MaskAndRegionRoundTrip) {
  Trace t("mx", 1);
  Sample s;
  s.rank = 0;
  s.time = 100;
  s.counters[counters::CounterId::TotIns] = 42;
  s.validMask = 0b000011;  // only the fixed counters
  s.regionId = 7;
  t.addSample(s);
  Sample plain;
  plain.rank = 0;
  plain.time = 200;
  plain.counters[counters::CounterId::TotIns] = 50;
  t.addSample(plain);
  t.finalize();
  std::stringstream ss;
  write(t, ss);
  const Trace back = read(ss);
  ASSERT_EQ(back.samples().size(), 2u);
  EXPECT_EQ(back.samples()[0].validMask, 0b000011);
  EXPECT_EQ(back.samples()[0].regionId, 7u);
  EXPECT_EQ(back.samples()[1].validMask, kAllCountersMask);
  EXPECT_EQ(back.samples()[1].regionId, kNoRegion);
}

TEST(TraceIo, LegacySampleLineWithoutMaskAccepted) {
  std::istringstream is(
      "#UNVEIL_TRACE v1\nranks 1\nduration 100\nS 0 5 1 2 3 4 5 6\n");
  const Trace t = read(is);
  ASSERT_EQ(t.samples().size(), 1u);
  EXPECT_EQ(t.samples()[0].validMask, kAllCountersMask);
  EXPECT_EQ(t.samples()[0].regionId, kNoRegion);
}

TEST(TraceIo, BadMaskRejected) {
  std::istringstream is(
      "#UNVEIL_TRACE v1\nranks 1\nduration 100\nS 0 5 1 2 3 4 5 6 255\n");
  EXPECT_THROW((void)read(is), TraceError);
}

TEST(TraceIo, AppNameWithSpacesRoundTrips) {
  // Regression: the reader used `ls >> appName`, truncating "gromacs mdrun"
  // to "gromacs" on every write -> read round-trip.
  Trace t("gromacs mdrun  (production)", 1);
  Sample s;
  s.rank = 0;
  s.time = 10;
  t.addSample(s);
  t.finalize();
  std::stringstream ss;
  write(t, ss);
  EXPECT_EQ(read(ss).appName(), "gromacs mdrun  (production)");
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "#UNVEIL_TRACE v1\n\n# a comment\napp demo\nranks 1\nduration 10\n\n");
  const Trace t = read(is);
  EXPECT_EQ(t.appName(), "demo");
  EXPECT_EQ(t.numRanks(), 1u);
}

}  // namespace
}  // namespace unveil::trace
