/// Tests for streaming and batch statistics.

#include <gtest/gtest.h>

#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::support {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> v = {1.5, 2.5, -3.0, 7.25, 0.0, 4.125};
  RunningStats s;
  double sum = 0.0;
  for (double x : v) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(v.size());
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), ss / static_cast<double>(v.size() - 1), 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 7.25);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(Quantile, ThrowsOnEmpty) {
  EXPECT_THROW((void)quantile({}, 0.5), AnalysisError);
  EXPECT_THROW((void)median({}), AnalysisError);
  EXPECT_THROW((void)madSigma({}), AnalysisError);
  EXPECT_THROW((void)mean(std::span<const double>{}), AnalysisError);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v = {4.2};
  EXPECT_EQ(quantile(v, 0.0), 4.2);
  EXPECT_EQ(quantile(v, 0.5), 4.2);
  EXPECT_EQ(quantile(v, 1.0), 4.2);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 4.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(MadSigma, GaussianConsistency) {
  // For {1..9} median=5, |dev| median = 2 -> sigma ~ 2.9652.
  std::vector<double> v;
  for (int i = 1; i <= 9; ++i) v.push_back(static_cast<double>(i));
  EXPECT_NEAR(madSigma(v), 1.4826 * 2.0, 1e-12);
}

TEST(MadSigma, RobustToOutlier) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double base = madSigma(v);
  v.back() = 1e9;  // one wild outlier
  EXPECT_NEAR(madSigma(v), base, 1.0);
}

TEST(Mean, Basic) {
  const std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(Histogram, RequiresValidRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-100.0); // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

}  // namespace
}  // namespace unveil::support
