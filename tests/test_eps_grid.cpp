/// \file test_eps_grid.cpp
/// Edge cases and brute-force equivalence for the uniform-grid index: the
/// structure every clustering query (DBSCAN region queries, k-dist
/// estimation, sampled classification) now runs through.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "unveil/cluster/eps_grid.hpp"
#include "unveil/support/rng.hpp"

namespace {

using namespace unveil;

cluster::FeatureMatrix randomMatrix(std::size_t n, std::size_t d,
                                    std::uint64_t seed, double span = 10.0) {
  support::Rng rng(seed, "eps-grid-test");
  cluster::FeatureMatrix m(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < d; ++k) m.at(i, k) = rng.uniform(-span, span);
  return m;
}

std::vector<std::size_t> bruteNeighbors(const cluster::FeatureMatrix& m,
                                        std::span<const double> p,
                                        double radius2) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < m.rows(); ++j) {
    double d2 = 0.0;
    const auto q = m.row(j);
    for (std::size_t k = 0; k < p.size(); ++k) {
      const double diff = p[k] - q[k];
      d2 += diff * diff;
    }
    if (d2 <= radius2) out.push_back(j);
  }
  return out;
}

TEST(EpsGrid, EmptyInput) {
  const cluster::FeatureMatrix m(0, 2);
  const cluster::EpsGrid grid(m, 0.5);
  ASSERT_TRUE(grid.valid());
  EXPECT_EQ(grid.cellCount(), 0u);
  std::vector<std::size_t> out;
  const double p[2] = {0.0, 0.0};
  grid.neighbors(std::span<const double>(p, 2), 1.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(EpsGrid, AllIdenticalPoints) {
  cluster::FeatureMatrix m(64, 3);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t k = 0; k < m.dims(); ++k) m.at(i, k) = 4.25;
  const cluster::EpsGrid grid(m, 0.1);
  ASSERT_TRUE(grid.valid());
  EXPECT_EQ(grid.cellCount(), 1u);
  std::vector<std::size_t> out;
  grid.neighbors(std::size_t{0}, 1e-12, out);
  EXPECT_EQ(out.size(), m.rows());  // all at distance zero
  // knnCellSize reports a degenerate bounding box as 0: no usable grid.
  EXPECT_EQ(cluster::EpsGrid::knnCellSize(m, 8), 0.0);
}

TEST(EpsGrid, RadiusSmallerThanAnyPairwiseDistance) {
  // Integer lattice: minimum pairwise distance is 1. A radius far below
  // that returns exactly the query point itself, no matter how the cells
  // are laid out.
  cluster::FeatureMatrix m(25, 2);
  for (std::size_t i = 0; i < 25; ++i) {
    m.at(i, 0) = static_cast<double>(i % 5);
    m.at(i, 1) = static_cast<double>(i / 5);
  }
  const cluster::EpsGrid grid(m, 0.31);
  ASSERT_TRUE(grid.valid());
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    grid.neighbors(i, 1e-4, out);
    ASSERT_EQ(out.size(), 1u) << "row " << i;
    EXPECT_EQ(out[0], i);
  }
}

TEST(EpsGrid, MatchesBruteForceAcrossRadiiAndCellSizes) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const std::size_t d : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      const auto m = randomMatrix(200, d, seed);
      // Radii below, at, and above the cell edge; cells below and above
      // the radius — both directions of the reach computation.
      for (const double cell : {0.2, 0.7, 2.0}) {
        const cluster::EpsGrid grid(m, cell);
        ASSERT_TRUE(grid.valid());
        for (const double radius : {0.1, 0.7, 1.5, 5.0}) {
          const double r2 = radius * radius;
          std::vector<std::size_t> got;
          for (std::size_t i = 0; i < m.rows(); i += 7) {
            grid.neighbors(i, r2, got);
            std::sort(got.begin(), got.end());
            EXPECT_EQ(got, bruteNeighbors(m, m.row(i), r2))
                << "seed " << seed << " d " << d << " cell " << cell
                << " radius " << radius << " row " << i;
          }
        }
      }
    }
  }
}

TEST(EpsGrid, FreePointQueryMatchesBruteForce) {
  const auto m = randomMatrix(150, 2, 11);
  const cluster::EpsGrid grid(m, 0.8);
  ASSERT_TRUE(grid.valid());
  support::Rng rng(12, "free-points");
  std::vector<std::size_t> got;
  for (int q = 0; q < 40; ++q) {
    // Half in-range, half far outside the indexed bounding box.
    const double span = (q % 2 == 0) ? 10.0 : 100.0;
    const double p[2] = {rng.uniform(-span, span), rng.uniform(-span, span)};
    const std::span<const double> ps(p, 2);
    for (const double radius : {0.5, 2.0, 40.0}) {
      const double r2 = radius * radius;
      grid.neighbors(ps, r2, got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, bruteNeighbors(m, ps, r2)) << "query " << q;
    }
  }
}

std::size_t bruteNearest(const cluster::FeatureMatrix& m,
                         std::span<const double> p, double radius2) {
  double bestD2 = std::numeric_limits<double>::infinity();
  std::size_t best = cluster::EpsGrid::kNoRow;
  for (std::size_t j = 0; j < m.rows(); ++j) {
    double d2 = 0.0;
    const auto q = m.row(j);
    for (std::size_t k = 0; k < p.size(); ++k) {
      const double diff = p[k] - q[k];
      d2 += diff * diff;
    }
    if (d2 <= radius2 && d2 < bestD2) {
      bestD2 = d2;
      best = j;  // strict < keeps the lowest row on exact ties
    }
  }
  return best;
}

TEST(EpsGrid, NearestMatchesBruteForce) {
  for (const std::uint64_t seed : {5ULL, 6ULL}) {
    for (const std::size_t d : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      const auto m = randomMatrix(180, d, seed);
      for (const double cell : {0.2, 0.7, 2.0}) {
        const cluster::EpsGrid grid(m, cell);
        ASSERT_TRUE(grid.valid());
        support::Rng rng(seed, "nearest-queries");
        std::vector<double> p(d);
        for (int q = 0; q < 30; ++q) {
          // Half in-range, half far outside the indexed bounding box.
          const double span = (q % 2 == 0) ? 10.0 : 100.0;
          for (std::size_t k = 0; k < d; ++k) p[k] = rng.uniform(-span, span);
          for (const double radius : {0.05, 0.7, 3.0, 50.0}) {
            const double r2 = radius * radius;
            EXPECT_EQ(grid.nearest(p, r2), bruteNearest(m, p, r2))
                << "seed " << seed << " d " << d << " cell " << cell
                << " radius " << radius << " query " << q;
          }
        }
      }
    }
  }
}

TEST(EpsGrid, NearestTieBreaksToLowestRow) {
  // Three rows, two of them equidistant from the query (and one an exact
  // duplicate of the other): the lowest row index must win.
  cluster::FeatureMatrix m(3, 2);
  m.at(0, 0) = -1.0;
  m.at(0, 1) = 0.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 0.0;
  m.at(2, 0) = 1.0;
  m.at(2, 1) = 0.0;
  const cluster::EpsGrid grid(m, 0.35);
  ASSERT_TRUE(grid.valid());
  const double p[2] = {0.0, 0.0};
  EXPECT_EQ(grid.nearest(std::span<const double>(p, 2), 4.0), 0u);
  const double q[2] = {0.5, 0.0};
  EXPECT_EQ(grid.nearest(std::span<const double>(q, 2), 4.0), 1u);
}

TEST(EpsGrid, NearestReturnsNoRowOutsideRadius) {
  const auto m = randomMatrix(50, 2, 51);
  const cluster::EpsGrid grid(m, 0.5);
  ASSERT_TRUE(grid.valid());
  const double p[2] = {500.0, 500.0};
  EXPECT_EQ(grid.nearest(std::span<const double>(p, 2), 1.0),
            cluster::EpsGrid::kNoRow);
}

TEST(EpsGrid, KthNearestMatchesBruteForce) {
  const auto m = randomMatrix(120, 2, 21);
  const cluster::EpsGrid grid(m, cluster::EpsGrid::knnCellSize(m, 8));
  ASSERT_TRUE(grid.valid());
  for (std::size_t i = 0; i < m.rows(); i += 11) {
    std::vector<double> dists;
    for (std::size_t j = 0; j < m.rows(); ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      for (std::size_t k = 0; k < m.dims(); ++k) {
        const double diff = m.at(i, k) - m.at(j, k);
        d2 += diff * diff;
      }
      dists.push_back(std::sqrt(d2));
    }
    std::sort(dists.begin(), dists.end());
    for (const std::size_t k : {std::size_t{0}, std::size_t{7}}) {
      EXPECT_DOUBLE_EQ(grid.kthNearestDist(i, k), dists[k])
          << "row " << i << " k " << k;
    }
  }
}

TEST(EpsGrid, InvalidWhenCellSizeDegenerate) {
  const auto m = randomMatrix(10, 2, 31);
  EXPECT_FALSE(cluster::EpsGrid(m, 0.0).valid());
  EXPECT_FALSE(cluster::EpsGrid(m, -1.0).valid());
  EXPECT_FALSE(
      cluster::EpsGrid(m, std::numeric_limits<double>::quiet_NaN()).valid());
  EXPECT_FALSE(
      cluster::EpsGrid(m, std::numeric_limits<double>::infinity()).valid());
}

TEST(EpsGrid, InvalidWhenCoordinatesOverflowCellRange) {
  cluster::FeatureMatrix m(2, 1);
  m.at(0, 0) = 0.0;
  m.at(1, 0) = 1e18;  // coordinate / cell ratio beyond the indexable range
  EXPECT_FALSE(cluster::EpsGrid(m, 1e-3).valid());
}

TEST(EpsGrid, InvalidAboveDimensionCap) {
  const auto m = randomMatrix(10, cluster::EpsGrid::kMaxDims + 1, 41, 1.0);
  EXPECT_FALSE(cluster::EpsGrid(m, 0.5).valid());
}

}  // namespace
