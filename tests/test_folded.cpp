/// Tests for the folding projection itself — the paper's core mechanism.

#include <gtest/gtest.h>

#include <cmath>

#include "unveil/cluster/burst.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/support/error.hpp"
#include "test_util.hpp"

namespace unveil::folding {
namespace {

using counters::CounterId;

std::vector<std::size_t> allIndices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(Fold, PointsLieOnKnownCdf) {
  testutil::SyntheticSpec spec;
  spec.bursts = 30;
  spec.samplesPerBurst = 8;
  spec.cdf = [](double t) { return t * t; };  // quadratic cumulative profile
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const auto folded =
      foldCluster(trace, bursts, allIndices(bursts.size()), CounterId::TotIns);

  EXPECT_EQ(folded.instances, 30u);
  EXPECT_EQ(folded.instancesWithSamples, 30u);
  EXPECT_EQ(folded.points.size(), 30u * 8u);
  EXPECT_NEAR(folded.meanDurationNs, static_cast<double>(spec.burstNs), 1.0);
  EXPECT_NEAR(folded.meanTotal, spec.totalIns, 1.0);
  for (const auto& p : folded.points) {
    EXPECT_GE(p.t, 0.0);
    EXPECT_LE(p.t, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
    EXPECT_NEAR(p.y, p.t * p.t, 1e-3);  // quantization only
  }
}

TEST(Fold, PointsSortedByT) {
  testutil::SyntheticSpec spec;
  spec.bursts = 10;
  spec.samplesPerBurst = 5;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const auto folded =
      foldCluster(trace, bursts, allIndices(bursts.size()), CounterId::TotIns);
  for (std::size_t i = 1; i < folded.points.size(); ++i)
    EXPECT_LE(folded.points[i - 1].t, folded.points[i].t);
}

TEST(Fold, MeanRatePerNs) {
  testutil::SyntheticSpec spec;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const auto folded =
      foldCluster(trace, bursts, allIndices(bursts.size()), CounterId::TotIns);
  EXPECT_NEAR(folded.meanRatePerNs(), spec.totalIns / static_cast<double>(spec.burstNs),
              1e-6);
}

TEST(Fold, ZeroIncrementCounterRejected) {
  testutil::SyntheticSpec spec;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  // FP_OPS never increments in the synthetic trace.
  EXPECT_THROW((void)foldCluster(trace, bursts, allIndices(bursts.size()),
                                 CounterId::FpOps),
               AnalysisError);
}

TEST(Fold, MinDurationSkipsShortInstances) {
  testutil::SyntheticSpec spec;
  spec.bursts = 10;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  FoldOptions opt;
  opt.minDurationNs = spec.burstNs + 1;  // all too short
  EXPECT_THROW((void)foldCluster(trace, bursts, allIndices(bursts.size()),
                                 CounterId::TotIns, opt),
               AnalysisError);
}

TEST(Fold, SubsetSelection) {
  testutil::SyntheticSpec spec;
  spec.bursts = 10;
  spec.samplesPerBurst = 2;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const std::vector<std::size_t> subset = {0, 2, 4};
  const auto folded = foldCluster(trace, bursts, subset, CounterId::TotIns);
  EXPECT_EQ(folded.instances, 3u);
  EXPECT_EQ(folded.points.size(), 6u);
}

TEST(Fold, OverheadCompensationShiftsT) {
  // One burst, one sample placed at mid-time; the burst window contains one
  // sample's overhead, so uncompensated t is left of compensated t.
  trace::Trace t("x", 1);
  const trace::TimeNs begin = 1000;
  const trace::TimeNs work = 100'000;
  const double sampleCost = 10'000.0;  // 10% of work
  const trace::TimeNs end = begin + work + static_cast<trace::TimeNs>(sampleCost);

  trace::Event eb;
  eb.rank = 0;
  eb.time = begin;
  eb.kind = trace::EventKind::PhaseBegin;
  t.addEvent(eb);
  trace::Sample s;
  s.rank = 0;
  s.time = begin + work / 2;  // sample halfway through the work
  s.counters[CounterId::TotIns] = 500;
  t.addSample(s);
  trace::Event ee = eb;
  ee.kind = trace::EventKind::PhaseEnd;
  ee.time = end;
  ee.counters[CounterId::TotIns] = 1000;
  t.addEvent(ee);
  t.finalize();

  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(t);
  ASSERT_EQ(bursts.size(), 1u);

  const auto raw = foldCluster(t, bursts, allIndices(1), CounterId::TotIns);
  FoldOptions comp;
  comp.perSampleOverheadNs = sampleCost;
  const auto adjusted = foldCluster(t, bursts, allIndices(1), CounterId::TotIns, comp);

  ASSERT_EQ(raw.points.size(), 1u);
  ASSERT_EQ(adjusted.points.size(), 1u);
  // Uncompensated: t = 50k / 110k ~ 0.4545; compensated: 50k / 100k = 0.5.
  EXPECT_NEAR(raw.points[0].t, 50'000.0 / 110'000.0, 1e-6);
  EXPECT_NEAR(adjusted.points[0].t, 0.5, 1e-6);
  // Compensation also corrects the mean duration to pure work time.
  EXPECT_NEAR(adjusted.meanDurationNs, static_cast<double>(work), 1.0);
}

TEST(Fold, SimulatedRunCoverageIsDense) {
  const auto& run = testutil::smallWavesimRun();
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(run.trace);
  // Select the sweep instances (truth phase 1) — the longest phase.
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < bursts.size(); ++i)
    if (bursts[i].truthPhase == 1) members.push_back(i);
  const auto folded = foldCluster(run.trace, bursts, members, CounterId::TotIns);
  ASSERT_GT(folded.points.size(), 100u);
  // Coverage: every decile of [0,1] contains folded points.
  std::array<int, 10> hist{};
  for (const auto& p : folded.points)
    ++hist[std::min(static_cast<std::size_t>(p.t * 10.0), std::size_t{9})];
  for (int count : hist) EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace unveil::folding
