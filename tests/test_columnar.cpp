/// Tests for the columnar SoA point/sample store and its SIMD fold kernels:
/// alignment contract, canonical sort (including NaN routing), and
/// bit-identity of the dispatched kernels against a plain scalar reference
/// regardless of which path support::simdLevel() selected.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "unveil/folding/columnar.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/folding/prune.hpp"
#include "unveil/support/aligned.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/simd.hpp"

namespace unveil::folding {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bitwise equality — distinguishes +0.0 from -0.0 and compares NaN
/// payloads, which EXPECT_DOUBLE_EQ cannot.
::testing::AssertionResult bitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

/// The scalar definition both kernel paths must reproduce bit-for-bit.
double refNormalizedTime(std::uint64_t time, std::size_t i, std::uint64_t begin,
                         double probeNs, double perSampleNs, double workNs) {
  const double elapsed = static_cast<double>(time - begin) - probeNs -
                         perSampleNs * static_cast<double>(i);
  return std::clamp(elapsed / workNs, 0.0, 1.0);
}

TEST(Aligned, ColumnStartsAre64ByteAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    support::AlignedVector<double> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                  support::kColumnAlignment,
              0u);
    support::AlignedVector<std::uint32_t> u(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u.data()) %
                  support::kColumnAlignment,
              0u);
  }
}

TEST(Simd, LevelIsQueryableAndNamed) {
  const auto level = support::simdLevel();
  const char* name = support::simdLevelName(level);
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(level == support::SimdLevel::Scalar ||
              level == support::SimdLevel::Avx2);
}

TEST(ColumnarKernels, NormalizedTimesMatchScalarReferenceBitForBit) {
  support::Rng rng(7, "columnar-times");
  // Sizes straddle every vector tail case; the large begin exercises the
  // full-width u64 subtraction.
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 127u, 1024u}) {
    for (const double perSampleNs : {0.0, 37.5}) {
      const std::uint64_t begin = 0xFFFF'FFFF'0000'0000ull;
      std::vector<std::uint64_t> times(n);
      for (std::size_t i = 0; i < n; ++i)
        times[i] = begin + static_cast<std::uint64_t>(
                               rng.uniform(0.0, 9.0e15));  // > 2^52 deltas
      const double probeNs = 1234.5;
      const double workNs = 4.5e15;
      std::vector<double> out(n, -1.0);
      kernels::normalizedTimes(times.data(), n, begin, probeNs, perSampleNs,
                               workNs, out.data());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_TRUE(bitEqual(out[i], refNormalizedTime(times[i], i, begin,
                                                       probeNs, perSampleNs,
                                                       workNs)))
            << "n=" << n << " i=" << i;
    }
  }
}

TEST(ColumnarKernels, NormalizedTimesClampPreservesNanAndSignedZero) {
  // NaN work durations and exactly-zero elapsed must round-trip the clamp
  // exactly like std::clamp: NaN propagates, -0.0 clamps to 0.0's bucket
  // without the kernel inventing a sign.
  const std::uint64_t times[4] = {100, 200, 300, 400};
  double out[4];
  kernels::normalizedTimes(times, 4, 100, 0.0, 0.0, kNan, out);
  for (double v : out) EXPECT_TRUE(std::isnan(v));
  kernels::normalizedTimes(times, 4, 100, 0.0, 0.0, kInf, out);
  for (double v : out) EXPECT_TRUE(bitEqual(v, 0.0));
}

TEST(ColumnarKernels, CounterDeltasExactU64Conversion) {
  // Every one of these requires the exact u64 → f64 conversion (values
  // beyond 2^52 round; the kernel must round identically to a scalar cast).
  const std::vector<std::uint64_t> raw = {
      0,
      1,
      (1ull << 52) - 1,
      (1ull << 52) + 1,
      (1ull << 53) + 1,
      (1ull << 63) | 12345,
      0xFFFF'FFFF'FFFF'FFFFull,
      0xDEAD'BEEF'CAFE'F00Dull};
  std::vector<double> out(raw.size());
  kernels::counterDeltas(raw.data(), raw.size(), 0, 1.0, out.data());
  for (std::size_t i = 0; i < raw.size(); ++i)
    EXPECT_TRUE(bitEqual(out[i], static_cast<double>(raw[i]))) << "i=" << i;
}

TEST(ColumnarKernels, CounterDeltasMatchScalarReferenceBitForBit) {
  support::Rng rng(11, "columnar-deltas");
  for (std::size_t n : {1u, 4u, 7u, 63u, 500u}) {
    const std::uint64_t c0 = 0x1234'5678'9ABCull;
    std::vector<std::uint64_t> values(n);
    for (std::size_t i = 0; i < n; ++i)
      values[i] = c0 + static_cast<std::uint64_t>(rng.uniform(0.0, 1.0e16));
    const double increment = 7.25e14;
    std::vector<double> out(n);
    kernels::counterDeltas(values.data(), n, c0, increment, out.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(
          bitEqual(out[i], static_cast<double>(values[i] - c0) / increment))
          << "n=" << n << " i=" << i;
  }
}

/// Reference comparator replicated from the canonical order contract.
bool refLess(const FoldedPoint& a, const FoldedPoint& b) {
  const auto lt = [](double x, double y) {
    const bool nx = x != x, ny = y != y;
    if (nx || ny) return nx && !ny;
    return x < y;
  };
  if (lt(a.t, b.t)) return true;
  if (lt(b.t, a.t)) return false;
  if (a.burstIdx != b.burstIdx) return a.burstIdx < b.burstIdx;
  return lt(a.y, b.y);
}

PointColumns makeCloud(std::size_t n, bool withNonFinite) {
  support::Rng rng(3, "columnar-sort");
  PointColumns pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(-0.1, 1.1);  // includes out-of-contract values
    p.y = rng.uniform(0.0, 1.0);
    p.burstIdx = static_cast<std::size_t>(rng.uniformInt(0, 9));
    p.rank = static_cast<trace::Rank>(p.burstIdx % 4);
    if (withNonFinite && i % 97 == 0) p.t = kNan;
    if (withNonFinite && i % 89 == 0) p.y = kInf;
    pts.push_back(p);
  }
  return pts;
}

void expectCanonicallySorted(std::size_t n, bool withNonFinite) {
  PointColumns pts = makeCloud(n, withNonFinite);
  std::vector<FoldedPoint> ref(pts.begin(), pts.end());
  std::stable_sort(ref.begin(), ref.end(), refLess);
  pts.sortCanonical();
  ASSERT_EQ(pts.size(), ref.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bitEqual(pts[i].t, ref[i].t)) << "n=" << n << " i=" << i;
    EXPECT_TRUE(bitEqual(pts[i].y, ref[i].y)) << "n=" << n << " i=" << i;
    EXPECT_EQ(pts[i].burstIdx, ref[i].burstIdx) << "n=" << n << " i=" << i;
    EXPECT_EQ(pts[i].rank, ref[i].rank) << "n=" << n << " i=" << i;
  }
}

TEST(ColumnarSort, SmallPathMatchesReference) {
  expectCanonicallySorted(0, false);
  expectCanonicallySorted(1, false);
  expectCanonicallySorted(500, false);
}

TEST(ColumnarSort, BucketPathMatchesReference) {
  // Above kMinBucketSortPoints the distribution sort kicks in; it must
  // produce the exact same byte sequence as the comparison sort.
  expectCanonicallySorted(5000, false);
}

TEST(ColumnarSort, NanRoutesFirstDeterministically) {
  for (std::size_t n : {300u, 5000u}) {
    expectCanonicallySorted(n, true);
    // NaN t sorts before every number in both paths.
    PointColumns pts = makeCloud(n, true);
    pts.sortCanonical();
    bool seenNumber = false;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (std::isnan(pts[i].t))
        EXPECT_FALSE(seenNumber) << "NaN after a number at " << i;
      else
        seenNumber = true;
    }
  }
}

TEST(ColumnarNonFinite, PruneRoutesNanToBinZeroWithoutCrashing) {
  // A hand-built cloud with NaN/inf values must flow through the binned
  // consumers deterministically (NaN -> bin 0), never into an out-of-range
  // index — this is the regression surface for the columnar bin kernels.
  FoldedCounter f;
  for (std::size_t i = 0; i < 64; ++i) {
    FoldedPoint p;
    p.t = static_cast<double>(i) / 64.0;
    p.y = p.t;
    f.points.push_back(p);
  }
  FoldedPoint bad;
  bad.t = kNan;
  bad.y = kInf;
  f.points.push_back(bad);
  bad.t = kInf;
  bad.y = kNan;
  f.points.push_back(bad);
  f.points.sortCanonical();
  f.instances = 1;
  const auto result = pruneOutliers(f);
  EXPECT_EQ(result.pruned.points.size() + result.removed, f.points.size());
}

TEST(ColumnarStore, GrowAppendsUninitializedRangeAtOldSize) {
  PointColumns pts;
  FoldedPoint p{0.5, 0.25, 3, 1};
  pts.push_back(p);
  const std::size_t at = pts.grow(4);
  EXPECT_EQ(at, 1u);
  EXPECT_EQ(pts.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    pts.tData()[at + i] = 0.1 * static_cast<double>(i);
    pts.yData()[at + i] = 0.0;
    pts.burstData()[at + i] = 7;
    pts.rankData()[at + i] = 2;
  }
  EXPECT_EQ(pts[4].burstIdx, 7u);
  EXPECT_EQ(pts[4].rank, 2u);
  EXPECT_TRUE(bitEqual(pts[0].t, 0.5));
}

}  // namespace
}  // namespace unveil::folding
