/// Tests for RateShape — the ground-truth internal-evolution curves. The
/// parameterized suite checks the invariants every shape must satisfy; the
/// named tests pin analytic values.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "unveil/counters/shape.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"

namespace unveil::counters {
namespace {

struct ShapeCase {
  std::string name;
  RateShape shape;
};

class ShapeInvariants : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeInvariants, NonNegativeEverywhere) {
  const auto& s = GetParam().shape;
  for (double t : support::linspace(0.0, 1.0, 301)) EXPECT_GE(s.value(t), 0.0);
}

TEST_P(ShapeInvariants, CdfEndpoints) {
  const auto& s = GetParam().shape;
  EXPECT_NEAR(s.cdf(0.0), 0.0, 1e-9);
  EXPECT_NEAR(s.cdf(1.0), 1.0, 1e-9);
}

TEST_P(ShapeInvariants, CdfMonotone) {
  const auto& s = GetParam().shape;
  double prev = -1e-12;
  for (double t : support::linspace(0.0, 1.0, 301)) {
    const double c = s.cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST_P(ShapeInvariants, NormalizedRateIntegratesToOne) {
  const auto& s = GetParam().shape;
  const auto grid = support::linspace(0.0, 1.0, 2001);
  std::vector<double> rate(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) rate[i] = s.normalizedRate(grid[i]);
  EXPECT_NEAR(support::trapezoid(grid, rate), 1.0, 1e-3);
}

TEST_P(ShapeInvariants, ClampsOutsideDomain) {
  const auto& s = GetParam().shape;
  EXPECT_DOUBLE_EQ(s.value(-1.0), s.value(0.0));
  EXPECT_DOUBLE_EQ(s.value(2.0), s.value(1.0));
  EXPECT_DOUBLE_EQ(s.cdf(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(1.5), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ShapeInvariants,
    ::testing::Values(
        ShapeCase{"constant", RateShape::constant()},
        ShapeCase{"rampUp", RateShape::ramp(0.5, 2.0)},
        ShapeCase{"rampDown", RateShape::ramp(3.0, 1.0)},
        ShapeCase{"rampFromZero", RateShape::ramp(0.0, 1.0)},
        ShapeCase{"pwl", RateShape::piecewiseLinear({{0.0, 3.0}, {0.4, 2.8},
                                                     {0.6, 1.5}, {1.0, 1.2}})},
        ShapeCase{"plateau", RateShape::plateau(2.9, 2.6, 1.1, 0.25, 0.2)},
        ShapeCase{"plateauNoTail", RateShape::plateau(2.0, 1.0, 0.0, 0.3, 0.0)},
        ShapeCase{"sawtooth", RateShape::sawtooth(4, 1.4, 2.8)},
        ShapeCase{"oneTooth", RateShape::sawtooth(1, 0.0, 1.0)},
        ShapeCase{"bump", RateShape::bump(1.0, 1.3, 0.35, 0.18)},
        ShapeCase{"blend",
                  RateShape::blend({{0.7, RateShape::constant()},
                                    {0.3, RateShape::bump(0.0, 1.0, 0.5, 0.1)}})},
        ShapeCase{"custom", RateShape::fromFunction("sin2", [](double t) {
                    return 1.0 + 0.5 * std::sin(6.28318 * t);
                  })}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) { return info.param.name; });

TEST(ShapeValues, ConstantIsOne) {
  const auto s = RateShape::constant();
  EXPECT_DOUBLE_EQ(s.value(0.3), 1.0);
  EXPECT_DOUBLE_EQ(s.meanRate(), 1.0);
  EXPECT_NEAR(s.cdf(0.25), 0.25, 1e-9);
}

TEST(ShapeValues, RampAnalyticCdf) {
  // r(t) = 1 + t; integral = t + t^2/2; total 1.5.
  const auto s = RateShape::ramp(1.0, 2.0);
  EXPECT_NEAR(s.meanRate(), 1.5, 1e-6);
  EXPECT_NEAR(s.cdf(0.5), (0.5 + 0.125) / 1.5, 1e-6);
  EXPECT_NEAR(s.normalizedRate(0.0), 1.0 / 1.5, 1e-9);
  EXPECT_NEAR(s.normalizedRate(1.0), 2.0 / 1.5, 1e-9);
}

TEST(ShapeValues, SawtoothTeeth) {
  const auto s = RateShape::sawtooth(4, 1.0, 2.0);
  EXPECT_NEAR(s.value(0.0), 2.0, 1e-9);
  // Just before each tooth boundary the rate approaches the low value.
  EXPECT_NEAR(s.value(0.2499), 1.0, 1e-2);
  EXPECT_NEAR(s.value(0.25), 2.0, 1e-9);
  EXPECT_NEAR(s.meanRate(), 1.5, 1e-2);
}

TEST(ShapeValues, BumpPeaksAtCenter) {
  const auto s = RateShape::bump(1.0, 2.0, 0.4, 0.1);
  EXPECT_NEAR(s.value(0.4), 3.0, 1e-9);
  EXPECT_LT(s.value(0.9), 1.01);
}

TEST(ShapeValues, PiecewiseLinearInterpolation) {
  const auto s = RateShape::piecewiseLinear({{0.0, 0.0}, {0.5, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(s.value(0.25), 0.5, 1e-9);
  EXPECT_NEAR(s.value(0.75), 0.5, 1e-9);
  EXPECT_NEAR(s.meanRate(), 0.5, 1e-6);
}

TEST(ShapeErrors, RampNegative) {
  EXPECT_THROW((void)RateShape::ramp(-1.0, 1.0), ConfigError);
  EXPECT_THROW((void)RateShape::ramp(1.0, -1.0), ConfigError);
}

TEST(ShapeErrors, ZeroIntegralRejected) {
  EXPECT_THROW((void)RateShape::ramp(0.0, 0.0), ConfigError);
  EXPECT_THROW((void)RateShape::fromFunction("zero", [](double) { return 0.0; }),
               ConfigError);
}

TEST(ShapeErrors, PiecewiseLinearValidation) {
  EXPECT_THROW((void)RateShape::piecewiseLinear({{0.0, 1.0}}), ConfigError);
  EXPECT_THROW((void)RateShape::piecewiseLinear({{0.1, 1.0}, {1.0, 1.0}}),
               ConfigError);
  EXPECT_THROW((void)RateShape::piecewiseLinear({{0.0, 1.0}, {0.9, 1.0}}),
               ConfigError);
  EXPECT_THROW((void)RateShape::piecewiseLinear({{0.0, 1.0}, {0.5, 1.0},
                                                 {0.5, 2.0}, {1.0, 1.0}}),
               ConfigError);
  EXPECT_THROW((void)RateShape::piecewiseLinear({{0.0, -1.0}, {1.0, 1.0}}),
               ConfigError);
}

TEST(ShapeErrors, SawtoothValidation) {
  EXPECT_THROW((void)RateShape::sawtooth(0, 1.0, 2.0), ConfigError);
  EXPECT_THROW((void)RateShape::sawtooth(2, -0.1, 2.0), ConfigError);
  EXPECT_THROW((void)RateShape::sawtooth(2, 3.0, 2.0), ConfigError);
}

TEST(ShapeErrors, BumpValidation) {
  EXPECT_THROW((void)RateShape::bump(-1.0, 1.0, 0.5, 0.1), ConfigError);
  EXPECT_THROW((void)RateShape::bump(1.0, 1.0, 0.5, 0.0), ConfigError);
  EXPECT_THROW((void)RateShape::bump(0.5, -1.0, 0.5, 0.1), ConfigError);
}

TEST(ShapeErrors, PlateauValidation) {
  EXPECT_THROW((void)RateShape::plateau(-1.0, 1.0, 1.0, 0.2, 0.2), ConfigError);
  EXPECT_THROW((void)RateShape::plateau(1.0, 1.0, 1.0, 0.6, 0.5), ConfigError);
}

TEST(ShapeErrors, BlendValidation) {
  EXPECT_THROW((void)RateShape::blend({}), ConfigError);
  EXPECT_THROW((void)RateShape::blend({{0.0, RateShape::constant()}}), ConfigError);
}

TEST(ShapeErrors, FromFunctionRequiresCallable) {
  EXPECT_THROW((void)RateShape::fromFunction("null", nullptr), ConfigError);
}

}  // namespace
}  // namespace unveil::counters
