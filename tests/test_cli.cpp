/// Tests for the command-line tool (parser + subcommands).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <clocale>

#include "unveil/cli/commands.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/parse.hpp"

namespace unveil::cli {
namespace {

TEST(Args, ParsesFlagsAndValues) {
  const auto args = Args::parse({"--app", "wavesim", "--verbose", "--ranks", "8"});
  EXPECT_EQ(args.get("app"), "wavesim");
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.getInt("ranks", 0), 8);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.getInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
}

TEST(Args, ParsesEqualsSyntax) {
  const auto args = Args::parse({"--app=wavesim", "--ranks=8", "--flag",
                                 "--empty=", "--weird=--value"});
  EXPECT_EQ(args.get("app"), "wavesim");
  EXPECT_EQ(args.getInt("ranks", 0), 8);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("empty", "dflt"), "");
  EXPECT_EQ(args.get("weird"), "--value");
}

TEST(Args, RejectsPositional) {
  EXPECT_THROW((void)Args::parse({"positional"}), ConfigError);
  EXPECT_THROW((void)Args::parse({"--ok", "v", "stray"}), ConfigError);
  EXPECT_THROW((void)Args::parse({"--=value"}), ConfigError);
}

TEST(Args, CollectsPositionalsWhenAllowed) {
  const auto args =
      Args::parse({"a.uvtb=4", "b.uvtb", "--param", "ranks", "c.uvtb"}, true);
  // "--param ranks" consumes its value; the flag-value binding rule means
  // positionals after a valued flag still land in positionals().
  ASSERT_EQ(args.positionals().size(), 3u);
  EXPECT_EQ(args.positionals()[0], "a.uvtb=4");
  EXPECT_EQ(args.positionals()[1], "b.uvtb");
  EXPECT_EQ(args.positionals()[2], "c.uvtb");
  EXPECT_EQ(args.get("param"), "ranks");
}

TEST(Args, PositionalsEmptyByDefaultAndMalformedFlagStillRejected) {
  const auto args = Args::parse({"--x", "1"});
  EXPECT_TRUE(args.positionals().empty());
  EXPECT_THROW((void)Args::parse({"--=v", "pos"}, true), ConfigError);
}

TEST(ParseDouble, AcceptsOnlyCLocaleNumbers) {
  double v = 0.0;
  EXPECT_EQ(support::parseDouble("1.5", v), support::ParseStatus::Ok);
  EXPECT_EQ(v, 1.5);
  EXPECT_EQ(support::parseDouble("-2e3", v), support::ParseStatus::Ok);
  EXPECT_EQ(v, -2000.0);
  // A decimal comma is never a number, whatever LC_NUMERIC says.
  EXPECT_EQ(support::parseDouble("1,5", v), support::ParseStatus::Malformed);
  EXPECT_EQ(support::parseDouble("", v), support::ParseStatus::Malformed);
  EXPECT_EQ(support::parseDouble(" 1.5", v), support::ParseStatus::Malformed);
  EXPECT_EQ(support::parseDouble("1.5x", v), support::ParseStatus::Malformed);
  EXPECT_EQ(support::parseDouble("1e9999", v), support::ParseStatus::OutOfRange);
}

/// Restores the previous LC_NUMERIC when the scope ends.
class ScopedNumericLocale {
 public:
  explicit ScopedNumericLocale(const char* name)
      : saved_(std::setlocale(LC_NUMERIC, nullptr)),
        applied_(std::setlocale(LC_NUMERIC, name) != nullptr) {}
  ~ScopedNumericLocale() {
    if (applied_) std::setlocale(LC_NUMERIC, saved_.c_str());
  }
  [[nodiscard]] bool applied() const { return applied_; }

 private:
  std::string saved_;
  bool applied_;
};

TEST(Args, GetDoubleIgnoresNumericLocale) {
  // Regression: strtod honours LC_NUMERIC, so under a comma-decimal locale
  // it parsed "2.5" as 2 (trailing garbage ".5" silently dropped by partial
  // conversion, or rejected, depending on libc). getDouble must parse the
  // C-locale spelling identically whatever the process locale is.
  ScopedNumericLocale locale("de_DE.UTF-8");
  if (!locale.applied()) GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  const auto args = Args::parse({"--scale", "2.5", "--comma", "2,5"});
  EXPECT_EQ(args.getDouble("scale", 0.0), 2.5);
  EXPECT_THROW((void)args.getDouble("comma", 0.0), ConfigError);
}

TEST(CampaignMember, SplitsOnLastEqualsOnlyWhenNumeric) {
  // Plain path, no annotation.
  auto spec = parseCampaignMember("trace.uvtb");
  EXPECT_EQ(spec.path, "trace.uvtb");
  EXPECT_FALSE(spec.param.has_value());

  // Annotated path.
  spec = parseCampaignMember("trace.uvtb=4");
  EXPECT_EQ(spec.path, "trace.uvtb");
  ASSERT_TRUE(spec.param.has_value());
  EXPECT_EQ(*spec.param, 4.0);

  // Regression: a '=' inside a directory name is part of the path when the
  // suffix is not a number.
  spec = parseCampaignMember("run=3/trace.uvtb");
  EXPECT_EQ(spec.path, "run=3/trace.uvtb");
  EXPECT_FALSE(spec.param.has_value());

  // Only the LAST '=' splits, so earlier ones stay in the path.
  spec = parseCampaignMember("a=b=2");
  EXPECT_EQ(spec.path, "a=b");
  ASSERT_TRUE(spec.param.has_value());
  EXPECT_EQ(*spec.param, 2.0);

  // Numeric suffix but empty path: contextual error, not a silent path.
  EXPECT_THROW((void)parseCampaignMember("=5"), ConfigError);
  // Numeric suffix outside the sane parameter range: contextual error.
  EXPECT_THROW((void)parseCampaignMember("trace.uvtb=1e99"), ConfigError);
  EXPECT_THROW((void)parseCampaignMember("trace.uvtb=-16"), ConfigError);
  EXPECT_THROW((void)parseCampaignMember("trace.uvtb=nan"), ConfigError);
}

TEST(Campaign, RequiresThreeTraces) {
  std::ostringstream out;
  const int rc = runCli({"campaign", "a.uvtb", "b.uvtb", "--no-telemetry"}, out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("at least 3 trace arguments"), std::string::npos);
}

TEST(Campaign, MalformedAnnotationNamesToken) {
  std::ostringstream out;
  const int rc = runCli(
      {"campaign", "a.uvtb=4", "b.uvtb=banana", "c.uvtb=64", "--no-telemetry"},
      out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("b.uvtb=banana"), std::string::npos);
  EXPECT_NE(out.str().find("banana"), std::string::npos);
}

TEST(Campaign, OutOfRangeAnnotationRejected) {
  std::ostringstream out;
  const int rc = runCli(
      {"campaign", "a.uvtb=4", "b.uvtb=-16", "c.uvtb=64", "--no-telemetry"}, out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("b.uvtb=-16"), std::string::npos);
}

TEST(Campaign, EmptyPathAnnotationRejected) {
  std::ostringstream out;
  const int rc =
      runCli({"campaign", "=4", "b.uvtb=16", "c.uvtb=64", "--no-telemetry"}, out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("empty trace path"), std::string::npos);
}

TEST(Args, RejectsBadNumbers) {
  const auto args = Args::parse({"--n", "abc", "--x", "1.2.3"});
  EXPECT_THROW((void)args.getInt("n", 0), ConfigError);
  EXPECT_THROW((void)args.getDouble("x", 0.0), ConfigError);
}

TEST(Args, RejectsOutOfRangeValues) {
  const auto args = Args::parse({"--threads", "0", "--ranks", "-3", "--scale",
                                 "0", "--big", "99999999999999999999"});
  EXPECT_THROW((void)args.getInt("threads", 0, 1), ConfigError);
  EXPECT_THROW((void)args.getInt("ranks", 16, 1), ConfigError);
  EXPECT_THROW((void)args.getDouble("scale", 1.0, 1e-6), ConfigError);
  EXPECT_THROW((void)args.getInt("big", 0), ConfigError);  // overflows long long
  // In-range values pass through untouched; absent flags keep the fallback
  // even when the fallback is outside the bounds.
  EXPECT_EQ(args.getInt("ranks", 16, -10, 10), -3);
  EXPECT_EQ(args.getInt("absent", 0, 1, 8), 0);
}

TEST(Args, RangeErrorsNameTheFlagAndBounds) {
  const auto args = Args::parse({"--threads", "0"});
  try {
    (void)args.getInt("threads", 0, 1);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find(">= 1"), std::string::npos) << msg;
  }
}

TEST(Args, TracksUnused) {
  const auto args = Args::parse({"--used", "1", "--typo", "2"});
  (void)args.get("used");
  const auto unused = args.unusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

class CliRoundTrip : public ::testing::Test {
 protected:
  static std::string tracePath() {
    static const std::string path = [] {
      // Per-process file name: ctest runs each test in its own process, and
      // two concurrent processes sharing one path race reader vs writer.
      const std::string p = ::testing::TempDir() + "/unveil_cli_test." +
                            std::to_string(::getpid()) + ".trace";
      std::ostringstream out;
      const int rc = runCli({"simulate", "--app", "wavesim", "--ranks", "2",
                             "--iterations", "10", "--out", p},
                            out);
      EXPECT_EQ(rc, 0) << out.str();
      return p;
    }();
    return path;
  }
};

TEST_F(CliRoundTrip, SimulateWritesTrace) {
  EXPECT_TRUE(std::filesystem::exists(tracePath()));
  EXPECT_GT(std::filesystem::file_size(tracePath()), 1000u);
}

TEST_F(CliRoundTrip, InfoReadsBack) {
  std::ostringstream out;
  const int rc = runCli({"info", "--trace", tracePath()}, out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("app:      wavesim"), std::string::npos);
  EXPECT_NE(out.str().find("ranks:    2"), std::string::npos);
}

TEST_F(CliRoundTrip, AnalyzePrintsClusters) {
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", tracePath(), "--sample-cost-ns",
                         "2000", "--probe-cost-ns", "100"},
                        out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("detected computation phases"), std::string::npos);
  EXPECT_NE(out.str().find("iteration period: 3"), std::string::npos);
  EXPECT_NE(out.str().find("SPMD-ness"), std::string::npos);
}

TEST_F(CliRoundTrip, AnalyzeExportsTelemetry) {
  const std::string traceOut = ::testing::TempDir() + "/unveil_cli_spans.json";
  const std::string metricsOut = ::testing::TempDir() + "/unveil_cli_metrics.json";
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace=" + tracePath(),
                         "--trace-out=" + traceOut,
                         "--metrics-out=" + metricsOut, "--verbose"},
                        out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("telemetry summary"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(traceOut));
  ASSERT_TRUE(std::filesystem::exists(metricsOut));

  std::ifstream tf(traceOut);
  std::stringstream spans;
  spans << tf.rdbuf();
  EXPECT_NE(spans.str().find("\"traceEvents\""), std::string::npos);
  for (const char* stage : {"pipeline.extract", "pipeline.cluster",
                            "pipeline.fold", "pipeline.fit"})
    EXPECT_NE(spans.str().find(stage), std::string::npos) << stage;

  std::ifstream mf(metricsOut);
  std::stringstream metrics;
  metrics << mf.rdbuf();
  EXPECT_NE(metrics.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.str().find("pipeline.bursts_extracted"), std::string::npos);
}

TEST_F(CliRoundTrip, AnalyzeClusterSampleMode) {
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", tracePath(), "--cluster-sample"},
                        out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("sampled clustering:"), std::string::npos);
  EXPECT_NE(out.str().find("detected computation phases"), std::string::npos);
}

TEST_F(CliRoundTrip, AnalyzeClusterExactPrintsNoSamplingLine) {
  std::ostringstream out;
  const int rc =
      runCli({"analyze", "--trace", tracePath(), "--cluster-exact"}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_EQ(out.str().find("sampled clustering:"), std::string::npos);
}

TEST_F(CliRoundTrip, AnalyzeClusterModeFlagsMutuallyExclusive) {
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", tracePath(), "--cluster-exact",
                         "--cluster-sample"},
                        out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("mutually exclusive"), std::string::npos);
}

TEST_F(CliRoundTrip, AnalyzeSampleFractionValidatedAndImpliesSampled) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"analyze", "--trace", tracePath(),
                    "--cluster-sample-fraction", "1.5"},
                   out),
            1);
  EXPECT_EQ(runCli({"analyze", "--trace", tracePath(),
                    "--cluster-sample-fraction", "0"},
                   out),
            1);
  std::ostringstream ok;
  const int rc = runCli({"analyze", "--trace", tracePath(),
                         "--cluster-sample-fraction", "0.5"},
                        ok);
  EXPECT_EQ(rc, 0) << ok.str();
  EXPECT_NE(ok.str().find("sampled clustering:"), std::string::npos);
}

TEST_F(CliRoundTrip, SampledAnalyzeIdenticalAcrossThreadCounts) {
  std::ostringstream one;
  std::ostringstream eight;
  EXPECT_EQ(runCli({"analyze", "--trace", tracePath(), "--cluster-sample",
                    "--threads", "1"},
                   one),
            0);
  EXPECT_EQ(runCli({"analyze", "--trace", tracePath(), "--cluster-sample",
                    "--threads", "8"},
                   eight),
            0);
  EXPECT_EQ(one.str(), eight.str());
}

TEST_F(CliRoundTrip, NoTelemetryDisablesExports) {
  std::ostringstream out;
  const int rc =
      runCli({"analyze", "--trace", tracePath(), "--no-telemetry"}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_EQ(out.str().find("telemetry summary"), std::string::npos);
}

TEST_F(CliRoundTrip, ExportParaver) {
  const std::string base = ::testing::TempDir() + "/unveil_cli_paraver";
  std::ostringstream out;
  const int rc = runCli({"export-paraver", "--trace", tracePath(), "--out", base}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_TRUE(std::filesystem::exists(base + ".prv"));
  EXPECT_TRUE(std::filesystem::exists(base + ".pcf"));
  EXPECT_TRUE(std::filesystem::exists(base + ".row"));
}

TEST_F(CliRoundTrip, ImbalancePrintsTable) {
  std::ostringstream out;
  const int rc = runCli({"imbalance", "--trace", tracePath()}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("load-balance characterization"), std::string::npos);
  EXPECT_NE(out.str().find("imbalance factor"), std::string::npos);
}

TEST_F(CliRoundTrip, EvolutionPrintsTable) {
  std::ostringstream out;
  const int rc = runCli({"evolution", "--trace", tracePath()}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("cross-run evolution"), std::string::npos);
  EXPECT_NE(out.str().find("trend"), std::string::npos);
}

TEST(Cli, ImbalanceEvolutionRequireTrace) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"imbalance"}, out), 2);
  EXPECT_EQ(runCli({"evolution"}, out), 2);
  EXPECT_EQ(runCli({"report"}, out), 2);
}

TEST_F(CliRoundTrip, ReportPrintsAllSections) {
  std::ostringstream out;
  const int rc = runCli({"report", "--trace", tracePath(), "--sample-cost-ns",
                         "2000", "--probe-cost-ns", "100"},
                        out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("performance report"), std::string::npos);
  EXPECT_NE(out.str().find("computation phases"), std::string::npos);
  EXPECT_NE(out.str().find("load balance"), std::string::npos);
}

TEST_F(CliRoundTrip, DiffAgainstSelfIsFlat) {
  std::ostringstream out;
  const int rc =
      runCli({"diff", "--trace", tracePath(), "--trace-b", tracePath()}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("run comparison"), std::string::npos);
  EXPECT_NE(out.str().find("(0%)"), std::string::npos);
}

TEST(Cli, DiffRequiresBothTraces) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"diff", "--trace", "a"}, out), 2);
  EXPECT_EQ(runCli({"diff", "--trace-b", "b"}, out), 2);
}

TEST(Cli, UnknownCommand) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"frobnicate"}, out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(Cli, NoCommandPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(runCli({}, out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(Cli, MissingRequiredFlags) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"simulate", "--app", "wavesim"}, out), 2);  // no --out
  EXPECT_EQ(runCli({"info"}, out), 2);
  EXPECT_EQ(runCli({"analyze"}, out), 2);
  EXPECT_EQ(runCli({"accuracy"}, out), 2);
  EXPECT_EQ(runCli({"export-paraver", "--trace", "x"}, out), 2);
}

TEST(Cli, UnknownFlagRejected) {
  std::ostringstream out;
  const int rc =
      runCli({"info", "--trace", "/nonexistent", "--bogus-flag", "1"}, out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("--bogus-flag"), std::string::npos);
}

TEST(Cli, MissingTraceFileIsError) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"info", "--trace", "/nonexistent/trace.txt"}, out), 1);
  EXPECT_NE(out.str().find("error:"), std::string::npos);
}

TEST(Cli, UnknownAppIsError) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"simulate", "--app", "nope", "--out", "/tmp/x.trace"}, out), 1);
}

TEST_F(CliRoundTrip, AnalyzeOutputIdenticalForAnyThreadCount) {
  const auto analyzeWith = [&](const std::string& threads) {
    std::ostringstream out;
    const int rc = runCli({"analyze", "--trace", tracePath(), "--no-telemetry",
                           "--threads", threads},
                          out);
    EXPECT_EQ(rc, 0) << out.str();
    return out.str();
  };
  // The whole parallel pipeline must be deterministic: byte-identical
  // analysis output no matter how many workers ran it.
  const std::string one = analyzeWith("1");
  EXPECT_EQ(one, analyzeWith("2"));
  EXPECT_EQ(one, analyzeWith("8"));
}

TEST(Cli, InvalidThreadsRejected) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"info", "--trace", "x", "--threads", "0"}, out), 1);
  EXPECT_NE(out.str().find("--threads"), std::string::npos);
  out.str("");
  EXPECT_EQ(runCli({"info", "--trace", "x", "--threads", "-2"}, out), 1);
  out.str("");
  EXPECT_EQ(runCli({"info", "--trace", "x", "--threads", "many"}, out), 1);
}

TEST(Cli, InvalidNumericFlagValuesRejected) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"simulate", "--app", "wavesim", "--out", "/tmp/x.trace",
                    "--ranks", "-3"},
                   out),
            1);
  EXPECT_NE(out.str().find("--ranks"), std::string::npos);
  out.str("");
  EXPECT_EQ(runCli({"simulate", "--app", "wavesim", "--out", "/tmp/x.trace",
                    "--iterations", "0"},
                   out),
            1);
  out.str("");
  EXPECT_EQ(runCli({"simulate", "--app", "wavesim", "--out", "/tmp/x.trace",
                    "--scale", "-1"},
                   out),
            1);
}

TEST(Cli, UnknownModeIsError) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"simulate", "--app", "wavesim", "--out", "/tmp/x.trace",
                    "--mode", "weird"},
                   out),
            1);
}

// --- graceful degradation end to end ---------------------------------------

/// Simulates a binary trace and overwrites the start of one rank's shard
/// with unterminated-varint bytes, returning the corrupted file's path.
std::string makeCorruptShardTrace() {
  const std::string path = ::testing::TempDir() + "/unveil_cli_corrupt." +
                           std::to_string(::getpid()) + ".utb";
  std::ostringstream out;
  const int rc = runCli({"simulate", "--app", "wavesim", "--ranks", "4",
                         "--iterations", "8", "--binary", "--out", path},
                        out);
  EXPECT_EQ(rc, 0) << out.str();

  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  std::size_t pos = 6;  // "UVTB2\n"
  auto varint = [&bytes, &pos] {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const auto b = static_cast<unsigned char>(bytes.at(pos++));
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  };
  const auto nameLen = varint();
  pos += static_cast<std::size_t>(nameLen);
  const auto ranks = varint();
  for (int i = 0; i < 3; ++i) varint();  // duration, nEvents, nSamples
  varint();                              // nStates
  std::uint64_t shard1Offset = 0;
  for (std::uint64_t r = 0; r < ranks; ++r) {
    for (int i = 0; i < 3; ++i) varint();  // events, samples, states
    const auto len = varint();
    if (r == 0) shard1Offset = len;  // shard 1 starts after shard 0
  }
  const std::size_t target = pos + static_cast<std::size_t>(shard1Offset);
  for (std::size_t i = 0; i < 12 && target + i < bytes.size(); ++i)
    bytes[target + i] = static_cast<char>(0x80);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(Cli, AnalyzeDegradesOnCorruptShardByDefault) {
  const std::string path = makeCorruptShardTrace();
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", path}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("dropped 1 of 4 shards"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("ranks analyzed: 3 of 4"), std::string::npos)
      << out.str();
}

TEST(Cli, AnalyzeStrictFailsOnCorruptShard) {
  const std::string path = makeCorruptShardTrace();
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", path, "--strict"}, out);
  EXPECT_EQ(rc, 1) << out.str();
  EXPECT_NE(out.str().find("rank=1"), std::string::npos) << out.str();
}

TEST(Cli, InfoDegradesOnCorruptShardByDefault) {
  const std::string path = makeCorruptShardTrace();
  std::ostringstream out;
  EXPECT_EQ(runCli({"info", "--trace", path}, out), 0) << out.str();
  EXPECT_NE(out.str().find("dropped 1 of 4 shards"), std::string::npos)
      << out.str();
}

// --- telemetry exports, sampler and flight recorder (PR 8) ----------------

TEST_F(CliRoundTrip, TelemetrySinkInNonexistentDirFailsUpFront) {
  for (const char* flag : {"--metrics-out", "--trace-out"}) {
    const std::string sink = "/nonexistent_unveil_dir/out.json";
    std::ostringstream out;
    const int rc =
        runCli({"analyze", "--trace", tracePath(), flag, sink}, out);
    EXPECT_EQ(rc, 1) << flag << ": " << out.str();
    // Contextful (PR 4 style): the error names the offending path...
    EXPECT_NE(out.str().find("[file=" + sink + "]"), std::string::npos)
        << out.str();
    // ...and fails before the pipeline runs, not after minutes of analysis.
    EXPECT_EQ(out.str().find("detected computation phases"), std::string::npos)
        << out.str();
  }
}

TEST_F(CliRoundTrip, AnalyzeExportsSamplerSections) {
  const std::string traceOut =
      ::testing::TempDir() + "/unveil_cli_sampler_spans.json";
  const std::string metricsOut =
      ::testing::TempDir() + "/unveil_cli_sampler_metrics.json";
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", tracePath(), "--sample-interval",
                         "1", "--trace-out", traceOut, "--metrics-out",
                         metricsOut},
                        out);
  EXPECT_EQ(rc, 0) << out.str();

  std::ifstream mf(metricsOut);
  std::stringstream metrics;
  metrics << mf.rdbuf();
  EXPECT_NE(metrics.str().find("\"sampler\""), std::string::npos);
  EXPECT_NE(metrics.str().find("\"rss_peak_bytes\""), std::string::npos);
  EXPECT_NE(metrics.str().find("\"stage_resources\""), std::string::npos);
  EXPECT_NE(metrics.str().find("stage.cpu_ns.cluster"), std::string::npos);

  std::ifstream tf(traceOut);
  std::stringstream spans;
  spans << tf.rdbuf();
  EXPECT_NE(spans.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(spans.str().find("\"name\":\"pool\""), std::string::npos);
  EXPECT_NE(spans.str().find("\"name\":\"memory_mb\""), std::string::npos);
}

TEST_F(CliRoundTrip, SampleIntervalValidated) {
  std::ostringstream out;
  // Disabling the sampler is the explicit --no-sampler flag; a zero or
  // negative interval used to be a silent "disabled" that masked typos and
  // is now rejected like any other out-of-range value.
  EXPECT_EQ(runCli({"analyze", "--trace", tracePath(), "--no-sampler"}, out), 0)
      << out.str();
  for (const char* bad : {"0", "-5", "1.5"}) {
    out.str("");
    EXPECT_EQ(runCli({"analyze", "--trace", tracePath(), "--sample-interval",
                      bad},
                     out),
              1)
        << bad << ": " << out.str();
    EXPECT_NE(out.str().find("--sample-interval"), std::string::npos)
        << out.str();
  }
}

/// Returns the flight-recorder dump path the CLI would write under \p dir
/// (same process, so the pid matches).
std::string flightrecPath(const std::string& dir) {
  return dir + "/unveil-flightrec-" + std::to_string(::getpid()) + ".json";
}

TEST(Cli, ShardDegradationDumpsFlightRecorder) {
  const std::string path = makeCorruptShardTrace();
  const std::string dir = ::testing::TempDir() + "/unveil_cli_flightrec_deg";
  std::filesystem::create_directories(dir);
  std::filesystem::remove(flightrecPath(dir));
  std::ostringstream out;
  const int rc =
      runCli({"analyze", "--trace", path, "--flightrec-dir", dir}, out);
  EXPECT_EQ(rc, 0) << out.str();
  ASSERT_TRUE(std::filesystem::exists(flightrecPath(dir))) << out.str();

  std::ifstream f(flightrecPath(dir));
  std::stringstream dump;
  dump << f.rdbuf();
  // The dump carries the degradation reason and the triggering shard's
  // events: the shard_drop record naming rank 1 and the mirrored warning.
  EXPECT_NE(dump.str().find("\"reason\":\"shard-degradation\""),
            std::string::npos);
  EXPECT_NE(dump.str().find("shard_drop"), std::string::npos);
  EXPECT_NE(dump.str().find("rank=1"), std::string::npos);
}

TEST(Cli, NoFlightrecDisablesDump) {
  const std::string path = makeCorruptShardTrace();
  const std::string dir = ::testing::TempDir() + "/unveil_cli_flightrec_off";
  std::filesystem::create_directories(dir);
  std::filesystem::remove(flightrecPath(dir));
  std::ostringstream out;
  const int rc = runCli({"analyze", "--trace", path, "--no-flightrec",
                         "--flightrec-dir", dir},
                        out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_FALSE(std::filesystem::exists(flightrecPath(dir)));
}

class TelemetryDiffCli : public CliRoundTrip {
 protected:
  static std::string writeDump(const std::string& tag,
                               const std::string& json) {
    const std::string path = ::testing::TempDir() + "/unveil_cli_tdiff_" +
                             tag + "." + std::to_string(::getpid()) + ".json";
    std::ofstream f(path, std::ios::trunc);
    f << json;
    return path;
  }
};

TEST_F(TelemetryDiffCli, SelfDiffOfRealDumpExitsZero) {
  const std::string metricsOut = ::testing::TempDir() + "/unveil_cli_tdiff." +
                                 std::to_string(::getpid()) + ".json";
  std::ostringstream out;
  ASSERT_EQ(runCli({"analyze", "--trace", tracePath(), "--metrics-out",
                    metricsOut},
                   out),
            0)
      << out.str();
  out.str("");
  const int rc = runCli({"telemetry-diff", metricsOut, metricsOut}, out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("telemetry diff"), std::string::npos);
  EXPECT_NE(out.str().find("no regressions"), std::string::npos);
}

TEST_F(TelemetryDiffCli, InjectedSlowdownExitsThree) {
  const auto a = writeDump(
      "a", R"({"spans": {"pipeline.cluster": {"total_ns": 50000000}}})");
  const auto b = writeDump(
      "b", R"({"spans": {"pipeline.cluster": {"total_ns": 100000000}}})");
  std::ostringstream out;
  const int rc = runCli({"telemetry-diff", a, b}, out);
  EXPECT_EQ(rc, 3) << out.str();
  EXPECT_NE(out.str().find("REGRESSION"), std::string::npos);
  // A loose enough threshold clears it.
  out.str("");
  EXPECT_EQ(runCli({"telemetry-diff", a, b, "--threshold", "150"}, out), 0)
      << out.str();
}

TEST_F(TelemetryDiffCli, UsageAndErrorExitCodes) {
  std::ostringstream out;
  EXPECT_EQ(runCli({"telemetry-diff"}, out), 2);
  EXPECT_EQ(runCli({"telemetry-diff", "only-one.json"}, out), 2);
  const auto a = writeDump(
      "err", R"({"spans": {"pipeline.cluster": {"total_ns": 50000000}}})");
  out.str("");
  EXPECT_EQ(runCli({"telemetry-diff", a, "/nonexistent/b.json",
                    "--flightrec-dir", ::testing::TempDir()},
                   out),
            1);
  EXPECT_NE(out.str().find("/nonexistent/b.json"), std::string::npos);
  // A fatal error with an armed recorder leaves a postmortem dump behind.
  EXPECT_NE(out.str().find("flight recorder ->"), std::string::npos);
}

}  // namespace
}  // namespace unveil::cli
