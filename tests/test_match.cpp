/// Tests for N-way cross-run cluster matching (analysis/match.hpp).

#include <gtest/gtest.h>

#include <array>

#include "unveil/analysis/match.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

const PipelineResult& wavesimResult() {
  static const PipelineResult r = analyze(testutil::smallWavesimRun().trace);
  return r;
}

TEST(Match, SameRunThreeWaysAlignsByStructure) {
  const auto& r = wavesimResult();
  const std::array<const PipelineResult*, 3> runs = {&r, &r, &r};
  const auto match = matchAcross(runs);
  EXPECT_TRUE(match.structureMatched);
  EXPECT_EQ(match.phases.size(), r.clusters.size());
  for (const auto& row : match.phases) {
    EXPECT_TRUE(row.byStructure);
    ASSERT_EQ(row.clusterIds.size(), 3u);
    EXPECT_EQ(row.clusterIds[0], row.clusterIds[1]);
    EXPECT_EQ(row.clusterIds[1], row.clusterIds[2]);
    EXPECT_GE(row.clusterIds[0], 0);
  }
  for (const auto& u : match.unmatched) EXPECT_TRUE(u.empty());
}

TEST(Match, PositionsAgreeWithDiffrunHelpers) {
  const auto& r = wavesimResult();
  const auto assignment = positionAssignment(r, modalPeriodPositions(r));
  const std::array<const PipelineResult*, 2> runs = {&r, &r};
  const auto match = matchAcross(runs);
  ASSERT_EQ(match.phases.size(), assignment.size());
  for (const auto& row : match.phases) {
    const auto it = assignment.find(row.position);
    ASSERT_NE(it, assignment.end());
    EXPECT_EQ(row.clusterIds[0], it->second);
  }
}

TEST(Match, FallbackWhenPeriodsDisagree) {
  const auto& r = wavesimResult();
  PipelineResult other = r;
  other.period.period = r.period.period + 1;  // structures no longer agree
  const std::array<const PipelineResult*, 2> runs = {&r, &other};
  const auto match = matchAcross(runs);
  EXPECT_FALSE(match.structureMatched);
  EXPECT_EQ(match.phases.size(), r.clusters.size());
  for (const auto& row : match.phases) {
    EXPECT_FALSE(row.byStructure);
    // Identical cluster stats: the greedy assignment must map each anchor
    // cluster onto itself (distance 0 beats everything else).
    EXPECT_EQ(row.clusterIds[0], row.clusterIds[1]);
  }
}

TEST(Match, FallbackReportsLeftoverClusters) {
  const auto& r = wavesimResult();
  ASSERT_GE(r.clusters.size(), 2u);
  PipelineResult smaller = r;
  smaller.period.period = 0;  // force feature-space fallback
  smaller.clusters.pop_back();
  const std::array<const PipelineResult*, 2> runs = {&smaller, &r};
  const auto match = matchAcross(runs);
  EXPECT_FALSE(match.structureMatched);
  // The larger run anchors; the smaller run cannot fill every row.
  EXPECT_EQ(match.phases.size(), r.clusters.size());
  std::size_t unfilled = 0;
  for (const auto& row : match.phases)
    if (row.clusterIds[0] < 0) ++unfilled;
  EXPECT_EQ(unfilled, 1u);
  EXPECT_TRUE(match.unmatched[0].empty());
  EXPECT_TRUE(match.unmatched[1].empty());
}

TEST(Match, EmptyInput) {
  const auto match = matchAcross({});
  EXPECT_TRUE(match.phases.empty());
  EXPECT_FALSE(match.structureMatched);
}

TEST(Match, ZeroPeriodFallsBack) {
  PipelineResult a;  // no period, no clusters
  const std::array<const PipelineResult*, 2> runs = {&a, &a};
  const auto match = matchAcross(runs);
  EXPECT_FALSE(match.structureMatched);
  EXPECT_TRUE(match.phases.empty());
}

}  // namespace
}  // namespace unveil::analysis
