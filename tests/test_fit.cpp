/// Tests for cumulative-curve fitting: endpoint pinning, the monotonicity
/// guarantee of the PCHIP path (property-tested on random clouds), derivative
/// accuracy on known profiles, and the behavior differences between fitters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "unveil/folding/fit.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::folding {
namespace {

FoldedCounter cloudFromCdf(const std::function<double(double)>& cdf, std::size_t n,
                           double noise = 0.0, std::uint64_t seed = 1) {
  support::Rng rng(seed, "fitcloud");
  FoldedCounter f;
  f.instances = n;
  for (std::size_t i = 0; i < n; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = std::clamp(cdf(p.t) + rng.normal(0.0, noise), 0.0, 1.0);
    f.points.push_back(p);
  }
  f.points.sortCanonical();
  return f;
}

TEST(FitParams, Validation) {
  FitParams p;
  p.bins = 1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = FitParams{};
  p.kernelBandwidth = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = FitParams{};
  EXPECT_NO_THROW(p.validate());  // bins==0 means auto
}

TEST(Fit, EmptyCloudRejected) {
  FoldedCounter f;
  EXPECT_THROW((void)fitCumulative(f, FitParams{}), AnalysisError);
}

TEST(Fit, MethodNames) {
  EXPECT_EQ(fitMethodName(FitMethod::Pchip), "pchip");
  EXPECT_EQ(fitMethodName(FitMethod::Kernel), "kernel");
  EXPECT_EQ(fitMethodName(FitMethod::BinnedLinear), "binned-linear");
}

class AllMethods : public ::testing::TestWithParam<FitMethod> {};

TEST_P(AllMethods, EndpointsNearZeroAndOne) {
  const auto cloud = cloudFromCdf([](double t) { return t; }, 500, 0.01);
  FitParams params;
  params.method = GetParam();
  const auto fit = fitCumulative(cloud, params);
  EXPECT_NEAR(fit->value(0.0), 0.0, 0.05);
  EXPECT_NEAR(fit->value(1.0), 1.0, 0.05);
}

TEST_P(AllMethods, RecoversLinearCdf) {
  const auto cloud = cloudFromCdf([](double t) { return t; }, 2000, 0.005);
  FitParams params;
  params.method = GetParam();
  const auto fit = fitCumulative(cloud, params);
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) EXPECT_NEAR(fit->value(t), t, 0.02);
  // Derivatives checked in the interior only: the kernel fitter has a known
  // boundary bias (its weights see no data beyond the endpoints).
  for (double t : {0.3, 0.5, 0.7}) EXPECT_NEAR(fit->derivative(t), 1.0, 0.15);
}

TEST_P(AllMethods, RecoversQuadraticCdf) {
  const auto cloud =
      cloudFromCdf([](double t) { return t * t; }, 3000, 0.003, 7);
  FitParams params;
  params.method = GetParam();
  const auto fit = fitCumulative(cloud, params);
  for (double t : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(fit->value(t), t * t, 0.02);
    EXPECT_NEAR(fit->derivative(t), 2.0 * t, 0.2);
  }
}

TEST_P(AllMethods, NameMatchesMethod) {
  const auto cloud = cloudFromCdf([](double t) { return t; }, 50);
  FitParams params;
  params.method = GetParam();
  EXPECT_EQ(fitCumulative(cloud, params)->name(), fitMethodName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Methods, AllMethods,
                         ::testing::Values(FitMethod::Pchip, FitMethod::Kernel,
                                           FitMethod::BinnedLinear),
                         [](const ::testing::TestParamInfo<FitMethod>& info) {
                           std::string name(fitMethodName(info.param));
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

class PchipMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PchipMonotone, ValueMonotoneDerivativeNonNegative) {
  // Property: whatever the (noisy, even adversarial) cloud, the PCHIP path
  // yields a monotone cumulative fit with non-negative derivative.
  support::Rng rng(GetParam(), "prop");
  FoldedCounter f;
  const std::size_t n = 200 + static_cast<std::size_t>(rng.uniformInt(0, 300));
  for (std::size_t i = 0; i < n; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = rng.uniform(0.0, 1.0);  // pure noise, not even monotone
    f.points.push_back(p);
  }
  f.points.sortCanonical();
  const auto fit = fitCumulative(f, FitParams{});
  double prev = -1e-9;
  for (double t : support::linspace(0.0, 1.0, 501)) {
    const double v = fit->value(t);
    EXPECT_GE(v, prev - 1e-9) << "t=" << t;
    EXPECT_GE(fit->derivative(t), -1e-9) << "t=" << t;
    prev = v;
  }
  EXPECT_NEAR(fit->value(0.0), 0.0, 1e-9);
  EXPECT_NEAR(fit->value(1.0), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PchipMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Pchip, ExactOnLinearData) {
  const auto cloud = cloudFromCdf([](double t) { return t; }, 5000, 0.0);
  const auto fit = fitCumulative(cloud, FitParams{});
  for (double t : support::linspace(0.0, 1.0, 101)) {
    EXPECT_NEAR(fit->value(t), t, 1e-3);
    EXPECT_NEAR(fit->derivative(t), 1.0, 1e-2);
  }
}

TEST(Pchip, AdaptiveBinsGrowWithPoints) {
  // Indirect check: a dense cloud resolves a sharper feature than a sparse
  // one can (the sparse fit's derivative is flatter at the step).
  auto steep = [](double t) { return t < 0.5 ? 0.2 * t : 0.2 * t + 0.8 * (t - 0.5) * 2.0; };
  const auto dense = cloudFromCdf(steep, 5000, 0.002, 3);
  const auto sparse = cloudFromCdf(steep, 300, 0.002, 3);
  const auto fitDense = fitCumulative(dense, FitParams{});
  const auto fitSparse = fitCumulative(sparse, FitParams{});
  // True derivative jumps from 0.2 to 1.8 at t = 0.5.
  EXPECT_GT(fitDense->derivative(0.75), 1.5);
  EXPECT_LT(fitDense->derivative(0.25), 0.5);
  // The sparse fit still sees the trend, just less sharply.
  EXPECT_GT(fitSparse->derivative(0.75), fitSparse->derivative(0.25));
}

TEST(Kernel, SmoothButNotNecessarilyMonotone) {
  // Kernel regression on noisy flat-ish data may produce (small) negative
  // derivatives — exactly why the default is PCHIP. Verify the fit at least
  // stays close to the data.
  const auto cloud = cloudFromCdf([](double t) { return t; }, 300, 0.05, 11);
  FitParams params;
  params.method = FitMethod::Kernel;
  const auto fit = fitCumulative(cloud, params);
  EXPECT_NEAR(fit->value(0.5), 0.5, 0.1);
}

TEST(Kernel, WindowedMatchesNaiveWithinTolerance) {
  // The windowed evaluation truncates the Gaussian at 8 bandwidths; the
  // excluded tail must stay below 1e-9 relative error against the full sum,
  // across bandwidths down to the bench's 0.005.
  const auto cloud = cloudFromCdf([](double t) { return t * t; }, 20000, 0.01, 13);
  for (double bw : {0.05, 0.02, 0.005}) {
    FitParams windowed;
    windowed.method = FitMethod::Kernel;
    windowed.kernelBandwidth = bw;
    windowed.kernelWindowed = true;
    FitParams naive = windowed;
    naive.kernelWindowed = false;
    const auto fw = fitCumulative(cloud, windowed);
    const auto fn = fitCumulative(cloud, naive);
    for (double t : support::linspace(0.0, 1.0, 201)) {
      const double a = fw->value(t);
      const double b = fn->value(t);
      EXPECT_LE(std::abs(a - b), 1e-9 * std::max(1.0, std::abs(b)))
          << "bandwidth " << bw << " t " << t;
    }
  }
}

TEST(Kernel, EmptyWindowFallsBackToExactSum) {
  // A query whose ±8σ window contains no points (sparse cloud, tiny
  // bandwidth) must fall back to the exact full sum, not return 0.
  FoldedCounter f;
  for (double t : {0.1, 0.9}) {
    FoldedPoint p;
    p.t = t;
    p.y = t;
    f.points.push_back(p);
  }
  f.instances = 2;
  FitParams windowed;
  windowed.method = FitMethod::Kernel;
  windowed.kernelBandwidth = 0.005;  // window radius 0.04: empty at t = 0.5
  FitParams naive = windowed;
  naive.kernelWindowed = false;
  const auto fw = fitCumulative(f, windowed);
  const auto fn = fitCumulative(f, naive);
  for (double t : {0.3, 0.5, 0.7}) EXPECT_DOUBLE_EQ(fw->value(t), fn->value(t));
}

TEST(BinnedLinear, DerivativePiecewiseConstant) {
  const auto cloud = cloudFromCdf([](double t) { return t; }, 2000, 0.0);
  FitParams params;
  params.method = FitMethod::BinnedLinear;
  params.bins = 4;
  const auto fit = fitCumulative(cloud, params);
  // Within one segment the derivative must not vary.
  EXPECT_NEAR(fit->derivative(0.40), fit->derivative(0.42), 1e-12);
}

}  // namespace
}  // namespace unveil::folding
