/// Tests for report generation (tables and figure series from pipeline
/// results).

#include <gtest/gtest.h>

#include <sstream>

#include "unveil/analysis/report.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

const PipelineResult& sharedResult() {
  static const PipelineResult result = analyze(testutil::smallWavesimRun().trace);
  return result;
}

TEST(Report, ClusterSummaryShape) {
  const auto table = clusterSummaryTable(sharedResult());
  EXPECT_EQ(table.cols(), 8u);
  // One row per cluster plus the noise row.
  EXPECT_EQ(table.rows(), sharedResult().clusters.size() + 1);
  std::ostringstream os;
  table.print(os, "t");
  EXPECT_NE(os.str().find("noise"), std::string::npos);
}

TEST(Report, ScatterSeriesCoverAllClusteredBursts) {
  const auto& result = sharedResult();
  const auto set = scatterSeries(result, cluster::FeatureId::LogDurationNs,
                                 cluster::FeatureId::Ipc, "fig");
  std::size_t points = 0;
  for (const auto& s : set.series()) points += s.x.size();
  EXPECT_EQ(points, result.bursts.size());
}

TEST(Report, ScatterSeriesLabelledPerCluster) {
  const auto& result = sharedResult();
  const auto set = scatterSeries(result, cluster::FeatureId::LogDurationNs,
                                 cluster::FeatureId::Ipc, "fig");
  ASSERT_GE(set.series().size(), result.clustering.numClusters);
  EXPECT_EQ(set.series()[0].label, "cluster 0");
}

TEST(Report, RateSeriesOnlyFoldedClusters) {
  const auto& result = sharedResult();
  const auto set = rateSeries(result, counters::CounterId::TotIns, "fig");
  std::size_t folded = 0;
  for (const auto& c : result.clusters)
    folded += (c.rates.count(counters::CounterId::TotIns) > 0) ? 1 : 0;
  EXPECT_EQ(set.series().size(), folded);
  for (const auto& s : set.series()) {
    ASSERT_FALSE(s.x.empty());
    EXPECT_DOUBLE_EQ(s.x.front(), 0.0);
    EXPECT_DOUBLE_EQ(s.x.back(), 1.0);
    for (double y : s.y) EXPECT_GE(y, 0.0);
  }
}

TEST(Report, TimelineSeriesLimitedByMaxRanks) {
  const auto& result = sharedResult();
  const auto set = timelineSeries(result, "fig", 2);
  EXPECT_EQ(set.series().size(), 2u);
  for (const auto& s : set.series()) {
    // x are times in ms, increasing.
    for (std::size_t i = 1; i < s.x.size(); ++i) EXPECT_LE(s.x[i - 1], s.x[i]);
  }
}

}  // namespace
}  // namespace unveil::analysis
