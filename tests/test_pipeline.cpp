/// End-to-end pipeline tests, parameterized over the three applications —
/// the integration layer of the test suite. Each case simulates a measured
/// run and checks that the full methodology recovers the known structure
/// and internal evolution.

#include <gtest/gtest.h>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/cluster/quality.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::analysis {
namespace {

struct AppCase {
  std::string name;
  std::size_t truePhases;
  std::size_t burstsPerIteration;  ///< nbsolver runs AXPY twice per iteration.
  std::size_t truePeriod;
};

class PipelinePerApp : public ::testing::TestWithParam<AppCase> {
 protected:
  static sim::RunResult makeRun(const std::string& app) {
    sim::apps::AppParams p;
    p.ranks = 8;
    p.iterations = 60;
    p.seed = 9;
    return runMeasured(app, p, sim::MeasurementConfig::folding());
  }
};

TEST_P(PipelinePerApp, RecoversStructureAndEvolution) {
  const auto& param = GetParam();
  const auto run = makeRun(param.name);
  const auto result =
      analyze(run.trace, calibratedPipelineConfig(sim::MeasurementConfig::folding()));

  // Bursts: bursts/iteration x iterations x ranks.
  EXPECT_EQ(result.bursts.size(), param.burstsPerIteration * 60u * 8u);

  // Clustering: at least the true phases, high agreement with ground truth.
  EXPECT_GE(result.clustering.numClusters, param.truePhases);
  std::vector<std::uint32_t> truth;
  for (const auto& b : result.bursts) truth.push_back(b.truthPhase);
  EXPECT_GT(cluster::adjustedRandIndex(result.clustering.labels, truth), 0.75);
  EXPECT_GT(cluster::purity(result.clustering.labels, truth), 0.85);

  // Structure: the iteration period.
  EXPECT_EQ(result.period.period, param.truePeriod);

  // Folding: every large cluster carries reconstructed rates, and each
  // reconstruction matches the analytic truth of its modal phase. The bound
  // per cluster is generous (18%) because at this small scale the SpMV
  // sawtooth is legitimately smeared; the *mean* over clusters must be <10%.
  std::size_t foldedClusters = 0;
  double errSum = 0.0;
  for (const auto& c : result.clusters) {
    if (!c.folded) continue;
    ++foldedClusters;
    const auto it = c.rates.find(counters::CounterId::TotIns);
    ASSERT_NE(it, c.rates.end());
    const auto& shape = run.app->phase(c.modalTruthPhase)
                            .model.profile(counters::CounterId::TotIns)
                            .shape;
    const auto truthCurve = folding::truthNormalizedRate(shape, it->second.t);
    const double err = folding::meanAbsDiffPercent(it->second.normRate, truthCurve);
    errSum += err;
    EXPECT_LT(err, 18.0) << param.name << " cluster " << c.clusterId;
  }
  ASSERT_GE(foldedClusters, param.truePhases - 1);
  EXPECT_LT(errSum / static_cast<double>(foldedClusters), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Apps, PipelinePerApp,
                         ::testing::Values(AppCase{"wavesim", 3, 3, 3},
                                           AppCase{"nbsolver", 3, 4, 4},
                                           AppCase{"particlemesh", 3, 3, 3}),
                         [](const ::testing::TestParamInfo<AppCase>& info) {
                           return info.param.name;
                         });

TEST(Pipeline, EmptyTraceRejected) {
  trace::Trace t("empty", 1);
  t.finalize();
  EXPECT_THROW((void)analyze(t), AnalysisError);
}

TEST(Pipeline, MpiGapModeWorks) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 40;
  p.seed = 9;
  const auto run = runMeasured("wavesim", p, sim::MeasurementConfig::folding());
  PipelineConfig config;
  config.useMpiGaps = true;
  config.extraction.minDurationNs = 50'000;
  const auto result = analyze(run.trace, config);
  // MPI-gap extraction merges sweep+update; expect at least 2 clusters.
  EXPECT_GE(result.clustering.numClusters, 2u);
  for (const auto& b : result.bursts) EXPECT_EQ(b.truthPhase, cluster::kNoPhase);
}

TEST(Pipeline, MinClusterInstancesGatesFolding) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 20;
  p.seed = 9;
  const auto run = runMeasured("wavesim", p, sim::MeasurementConfig::folding());
  PipelineConfig config;
  config.minClusterInstances = 1'000'000;  // nothing qualifies
  const auto result = analyze(run.trace, config);
  for (const auto& c : result.clusters) EXPECT_FALSE(c.folded);
}

TEST(Pipeline, FixedEpsRespected) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 20;
  p.seed = 9;
  const auto run = runMeasured("wavesim", p, sim::MeasurementConfig::folding());
  PipelineConfig config;
  config.autoEps = false;
  config.dbscan.eps = 0.42;
  const auto result = analyze(run.trace, config);
  EXPECT_DOUBLE_EQ(result.epsUsed, 0.42);
}

TEST(Pipeline, ClusterReportsConsistent) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 30;
  p.seed = 9;
  const auto run = runMeasured("nbsolver", p, sim::MeasurementConfig::folding());
  const auto result = analyze(run.trace);
  double totalShare = 0.0;
  std::size_t totalMembers = 0;
  for (const auto& c : result.clusters) {
    EXPECT_EQ(c.memberIdx.size(), c.instances);
    for (std::size_t i : c.memberIdx)
      EXPECT_EQ(result.clustering.labels[i], c.clusterId);
    totalShare += c.totalTimeFraction;
    totalMembers += c.instances;
  }
  EXPECT_LE(totalShare, 1.0 + 1e-9);
  EXPECT_EQ(totalMembers + result.clustering.noiseCount(), result.bursts.size());
}

TEST(Pipeline, AmrflowEndToEnd) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 60;
  p.seed = 9;
  const auto run = runMeasured("amrflow", p, sim::MeasurementConfig::folding());
  const auto result = analyze(run.trace);
  // 2 computes per iteration (advect + projection) x 60 x 4 ranks.
  EXPECT_EQ(result.bursts.size(), 2u * 60u * 4u);
  // Three performance phases: coarse advect, fine advect, projection.
  EXPECT_EQ(result.clustering.numClusters, 3u);
  EXPECT_EQ(result.period.period, 2u);
}

/// RAII: pin the shared pool to a size for one test, restore auto after.
struct PoolSizeGuard {
  explicit PoolSizeGuard(std::size_t n) { support::setGlobalThreads(n); }
  ~PoolSizeGuard() { support::setGlobalThreads(0); }
};

TEST(Pipeline, ParallelAnalysisMatchesSequentialBitExact) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 30;
  p.seed = 9;
  const auto run = runMeasured("wavesim", p, sim::MeasurementConfig::folding());
  const auto runAt = [&](std::size_t threads) {
    const PoolSizeGuard guard(threads);
    return analyze(run.trace);
  };
  const auto a = runAt(1);
  const auto b = runAt(8);
  // Every stage of the pipeline runs on the shared pool; the whole result
  // must be bit-identical regardless of pool size.
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  for (std::size_t i = 0; i < a.bursts.size(); ++i) {
    EXPECT_EQ(a.bursts[i].rank, b.bursts[i].rank);
    EXPECT_EQ(a.bursts[i].begin, b.bursts[i].begin);
    EXPECT_EQ(a.bursts[i].end, b.bursts[i].end);
    EXPECT_EQ(a.bursts[i].sampleFirst, b.bursts[i].sampleFirst);
    EXPECT_EQ(a.bursts[i].sampleCount, b.bursts[i].sampleCount);
  }
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.epsUsed, b.epsUsed);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].memberIdx, b.clusters[i].memberIdx);
    ASSERT_EQ(a.clusters[i].rates.size(), b.clusters[i].rates.size());
    for (const auto& [counter, curve] : a.clusters[i].rates) {
      const auto& other = b.clusters[i].rates.at(counter);
      EXPECT_EQ(curve.normRate, other.normRate);
      EXPECT_EQ(curve.physRate, other.physRate);
    }
  }
}

TEST(Experiments, StandardParams) {
  const auto p = standardParams(123);
  EXPECT_EQ(p.seed, 123u);
  EXPECT_GT(p.ranks, 0u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Experiments, CalibratedConfigCopiesCosts) {
  auto mc = sim::MeasurementConfig::folding();
  mc.sampling.sampleCostNs = 1234.0;
  mc.instrumentation.probeCostNs = 55.0;
  const auto cfg = calibratedPipelineConfig(mc);
  EXPECT_DOUBLE_EQ(cfg.reconstruct.fold.perSampleOverheadNs, 1234.0);
  EXPECT_DOUBLE_EQ(cfg.reconstruct.fold.probeOverheadNs, 55.0);
  const auto ep = calibratedEmpiricalParams(mc);
  EXPECT_DOUBLE_EQ(ep.perSampleOverheadNs, 1234.0);
  EXPECT_DOUBLE_EQ(ep.probeOverheadNs, 55.0);
}

TEST(Experiments, CalibratedConfigZeroWhenDisabled) {
  const auto cfg = calibratedPipelineConfig(sim::MeasurementConfig::none());
  EXPECT_DOUBLE_EQ(cfg.reconstruct.fold.perSampleOverheadNs, 0.0);
  EXPECT_DOUBLE_EQ(cfg.reconstruct.fold.probeOverheadNs, 0.0);
}

TEST(Experiments, FoldingAccuracyEndToEnd) {
  sim::apps::AppParams p;
  p.ranks = 8;
  p.iterations = 60;
  p.seed = 2;
  const auto coarse = runMeasured("wavesim", p, sim::MeasurementConfig::folding());
  const auto fine = runMeasured("wavesim", p, sim::MeasurementConfig::fineGrain());
  const auto result =
      analyze(coarse.trace, calibratedPipelineConfig(sim::MeasurementConfig::folding()));
  const auto acc = foldingAccuracy(coarse, fine, result, counters::CounterId::TotIns);
  ASSERT_GE(acc.size(), 2u);
  for (const auto& a : acc) {
    EXPECT_LT(a.vsFinePercent, 10.0) << a.phaseName;
    EXPECT_LT(a.vsTruthPercent, 10.0) << a.phaseName;
    EXPECT_GT(a.foldedPoints, 0u);
    EXPECT_FALSE(a.phaseName.empty());
  }
}

}  // namespace
}  // namespace unveil::analysis
