/// Fault-injection tests for the serve daemon's socket I/O primitives
/// (cli/sockio.hpp): short writes, EINTR storms, zero-byte sends, mid-line
/// hangups and real SO_RCVTIMEO timeouts — each exercised through the
/// injectable syscall hooks over a local socketpair.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <optional>
#include <string>

#include "unveil/cli/sockio.hpp"

namespace unveil::cli::sockio {
namespace {

/// A connected AF_UNIX stream pair, closed on destruction.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  [[nodiscard]] int a() const { return fds[0]; }
  [[nodiscard]] int b() const { return fds[1]; }
};

/// Shim state shared with the capture-less hook functions. Tests reset it
/// before installing a shim; everything runs single-threaded.
struct ShimState {
  int sendCalls = 0;
  int recvCalls = 0;
  int failuresToServe = 0;   ///< EINTR failures before succeeding.
  std::size_t sendCap = 0;   ///< Max bytes per send when > 0.
};
ShimState shim;

ssize_t cappedSend(int fd, const void* buf, std::size_t len, int flags) {
  ++shim.sendCalls;
  if (shim.sendCap > 0 && len > shim.sendCap) len = shim.sendCap;
  return ::send(fd, buf, len, flags);
}

ssize_t eintrThenSend(int fd, const void* buf, std::size_t len, int flags) {
  ++shim.sendCalls;
  if (shim.failuresToServe > 0) {
    --shim.failuresToServe;
    errno = EINTR;
    return -1;
  }
  return ::send(fd, buf, len, flags);
}

ssize_t alwaysEintrSend(int, const void*, std::size_t, int) {
  ++shim.sendCalls;
  errno = EINTR;
  return -1;
}

ssize_t zeroSend(int, const void*, std::size_t, int) {
  ++shim.sendCalls;
  return 0;
}

ssize_t eintrThenRecv(int fd, void* buf, std::size_t len, int flags) {
  ++shim.recvCalls;
  if (shim.failuresToServe > 0) {
    --shim.failuresToServe;
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t oneByteRecv(int fd, void* buf, std::size_t len, int flags) {
  ++shim.recvCalls;
  return ::recv(fd, buf, len > 1 ? 1 : len, flags);
}

std::string drain(int fd, std::size_t expect) {
  std::string got(expect, '\0');
  std::size_t off = 0;
  while (off < expect) {
    const ssize_t n = ::recv(fd, got.data() + off, expect - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  got.resize(off);
  return got;
}

TEST(SockIo, PlainRoundTrip) {
  SocketPair sp;
  ASSERT_TRUE(sendAll(sp.a(), "hello line\n"));
  const auto line = recvLine(sp.b(), 1 << 20);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "hello line");
}

TEST(SockIo, SendAllCompletesAcrossShortWrites) {
  SocketPair sp;
  shim = {};
  shim.sendCap = 3;  // every kernel send accepts at most 3 bytes
  ScopedHooks guard(Hooks{cappedSend, hooks().recv});
  const std::string msg = "0123456789abcdefghij";
  ASSERT_TRUE(sendAll(sp.a(), msg));
  EXPECT_GE(shim.sendCalls, 7);  // ceil(20 / 3)
  EXPECT_EQ(drain(sp.b(), msg.size()), msg);
}

TEST(SockIo, SendAllRidesOutBoundedEintr) {
  SocketPair sp;
  shim = {};
  shim.failuresToServe = 2;
  ScopedHooks guard(Hooks{eintrThenSend, hooks().recv});
  ASSERT_TRUE(sendAll(sp.a(), "payload\n"));
  EXPECT_EQ(shim.sendCalls, 3);  // 2 EINTR + 1 real
  EXPECT_EQ(drain(sp.b(), 8), "payload\n");
}

TEST(SockIo, SendAllGivesUpAfterEintrStorm) {
  SocketPair sp;
  shim = {};
  ScopedHooks guard(Hooks{alwaysEintrSend, hooks().recv});
  errno = 0;
  EXPECT_FALSE(sendAll(sp.a(), "x"));
  EXPECT_EQ(errno, EINTR);
  // The cap allows kMaxEintrRetries restarts of the first failed call.
  EXPECT_EQ(shim.sendCalls, kMaxEintrRetries + 1);
}

TEST(SockIo, SendAllTreatsZeroReturnAsError) {
  SocketPair sp;
  shim = {};
  ScopedHooks guard(Hooks{zeroSend, hooks().recv});
  errno = 0;
  EXPECT_FALSE(sendAll(sp.a(), "x"));
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(shim.sendCalls, 1);  // no spinning on zero-byte progress
}

TEST(SockIo, RecvLineRidesOutBoundedEintr) {
  SocketPair sp;
  ASSERT_TRUE(sendAll(sp.a(), "interrupted\n"));
  shim = {};
  shim.failuresToServe = 3;
  ScopedHooks guard(Hooks{hooks().send, eintrThenRecv});
  const auto line = recvLine(sp.b(), 1 << 20);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "interrupted");
  EXPECT_EQ(shim.recvCalls, 4);  // 3 EINTR + 1 real
}

TEST(SockIo, RecvLineAssemblesAcrossFragmentedReads) {
  SocketPair sp;
  ASSERT_TRUE(sendAll(sp.a(), "byte by byte\n"));
  shim = {};
  ScopedHooks guard(Hooks{hooks().send, oneByteRecv});
  const auto line = recvLine(sp.b(), 1 << 20);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "byte by byte");
  EXPECT_EQ(shim.recvCalls, 13);  // one call per byte including '\n'
}

TEST(SockIo, RecvLineReturnsNulloptOnEofBeforeNewline) {
  SocketPair sp;
  ASSERT_TRUE(sendAll(sp.a(), "no terminator"));
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  EXPECT_FALSE(recvLine(sp.b(), 1 << 20).has_value());
}

TEST(SockIo, RecvLineRejectsOverlongLine) {
  SocketPair sp;
  ASSERT_TRUE(sendAll(sp.a(), "0123456789abcdef-too-long\n"));
  EXPECT_FALSE(recvLine(sp.b(), 16).has_value());
  // Exactly at the cap is fine.
  ASSERT_TRUE(sendAll(sp.a(), "16-bytes-exactly\n"));
  const auto line = recvLine(sp.b(), 16);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "16-bytes-exactly");
}

TEST(SockIo, RecvLineTimesOutUnderRcvtimeo) {
  SocketPair sp;
  setIoTimeout(sp.b(), 0.1);
  errno = 0;
  const auto line = recvLine(sp.b(), 1 << 20);  // peer sends nothing
  EXPECT_FALSE(line.has_value());
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << "errno=" << errno;
}

}  // namespace
}  // namespace unveil::cli::sockio
