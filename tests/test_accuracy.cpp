/// Tests for the accuracy metrics and reference-curve builders.

#include <gtest/gtest.h>

#include "unveil/cluster/burst.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"
#include "test_util.hpp"

namespace unveil::folding {
namespace {

TEST(MeanAbsDiff, ZeroForIdentical) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(meanAbsDiffPercent(a, a), 0.0);
}

TEST(MeanAbsDiff, KnownValue) {
  const std::vector<double> a = {1.1, 0.9};
  const std::vector<double> b = {1.0, 1.0};
  // diff = 0.2, level = 2.0 -> 10%.
  EXPECT_NEAR(meanAbsDiffPercent(a, b), 10.0, 1e-12);
}

TEST(MeanAbsDiff, AsymmetricNormalization) {
  const std::vector<double> a = {2.0};
  const std::vector<double> b = {1.0};
  EXPECT_NEAR(meanAbsDiffPercent(a, b), 100.0, 1e-12);
  EXPECT_NEAR(meanAbsDiffPercent(b, a), 50.0, 1e-12);
}

TEST(MeanAbsDiff, Validation) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)meanAbsDiffPercent(a, b), ConfigError);
  EXPECT_THROW((void)meanAbsDiffPercent({}, {}), ConfigError);
  const std::vector<double> zero = {0.0};
  EXPECT_THROW((void)meanAbsDiffPercent(a, zero), AnalysisError);
}

TEST(TruthCurve, SamplesShape) {
  const auto shape = counters::RateShape::ramp(1.0, 3.0);
  const auto grid = support::linspace(0.0, 1.0, 5);
  const auto curve = truthNormalizedRate(shape, grid);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_NEAR(curve.front(), 1.0 / 2.0, 1e-9);
  EXPECT_NEAR(curve.back(), 3.0 / 2.0, 1e-9);
}

TEST(EmpiricalRate, RecoversKnownProfileFromDenseSamples) {
  testutil::SyntheticSpec spec;
  spec.bursts = 40;
  spec.samplesPerBurst = 50;  // dense: fine-grain style
  spec.cdf = [](double t) { return t * t; };
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  std::vector<std::size_t> all(bursts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  const auto grid = support::linspace(0.0, 1.0, 101);
  const auto rate = empiricalNormalizedRate(trace, bursts, all,
                                            counters::CounterId::TotIns, grid);
  ASSERT_EQ(rate.size(), grid.size());
  // True normalized rate is 2t.
  for (std::size_t i = 10; i < 91; ++i)
    EXPECT_NEAR(rate[i], 2.0 * grid[i], 0.15) << "t=" << grid[i];
}

TEST(EmpiricalRate, RequiresDenseInstances) {
  testutil::SyntheticSpec spec;
  spec.bursts = 20;
  spec.samplesPerBurst = 2;  // far below the density threshold
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  std::vector<std::size_t> all(bursts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto grid = support::linspace(0.0, 1.0, 11);
  EXPECT_THROW((void)empiricalNormalizedRate(trace, bursts, all,
                                             counters::CounterId::TotIns, grid),
               AnalysisError);
}

TEST(EmpiricalRate, BinCountValidated) {
  testutil::SyntheticSpec spec;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  std::vector<std::size_t> all(bursts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto grid = support::linspace(0.0, 1.0, 11);
  EmpiricalRateParams params;
  params.bins = 1;
  EXPECT_THROW((void)empiricalNormalizedRate(trace, bursts, all,
                                             counters::CounterId::TotIns, grid, params),
               ConfigError);
}

}  // namespace
}  // namespace unveil::folding
