/// Tests for the crash flight recorder (flight_recorder.hpp): ring
/// wraparound, truncation, the dump's JSON validity (parsed back with the
/// project's own parser), the shard-degradation auto-dump and the signal
/// handler's dump body.

#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "unveil/support/flight_recorder.hpp"
#include "unveil/support/json.hpp"
#include "unveil/support/log.hpp"

namespace unveil::support {
namespace {

/// The global recorder is process state; every test starts from a known
/// armed-and-empty configuration and disarms on exit.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/unveil_flightrec_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    auto& rec = FlightRecorder::instance();
    rec.enable(16);
    rec.clear();
    ASSERT_TRUE(rec.setDumpDirectory(dir_));
  }
  void TearDown() override {
    auto& rec = FlightRecorder::instance();
    rec.setDumpOnDegradation(false);
    rec.disable();
    rec.clear();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream f(path);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }

  std::string dir_;
};

TEST_F(FlightRecorderTest, DisabledRecorderDropsEvents) {
  auto& rec = FlightRecorder::instance();
  rec.disable();
  const auto before = rec.recorded();
  flightRecord(FlightKind::Marker, "must not land");
  EXPECT_EQ(rec.recorded(), before);
}

TEST_F(FlightRecorderTest, DumpIsValidJsonWithRecordedEvents) {
  auto& rec = FlightRecorder::instance();
  flightRecord(FlightKind::Marker, "command: analyze");
  flightRecord(FlightKind::SpanBegin, "pipeline.cluster");
  flightRecord(FlightKind::SpanEnd, "pipeline.cluster");
  ASSERT_TRUE(rec.dump("unit-test"));

  const auto doc = json::parseFile(rec.dumpPath());  // throws if malformed
  EXPECT_EQ(doc.at({"reason"})->asString(), "unit-test");
  EXPECT_EQ(doc.at({"pid"})->asDouble(), static_cast<double>(::getpid()));
  EXPECT_DOUBLE_EQ(doc.at({"recorded"})->asDouble(), 3.0);
  const auto& events = doc.at({"events"})->asArray();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at({"kind"})->asString(), "marker");
  EXPECT_EQ(events[0].at({"text"})->asString(), "command: analyze");
  EXPECT_EQ(events[1].at({"kind"})->asString(), "span_begin");
  EXPECT_EQ(events[2].at({"kind"})->asString(), "span_end");
  // Committed events carry monotone sequence numbers and timestamps.
  EXPECT_LT(events[0].at({"seq"})->asDouble(), events[2].at({"seq"})->asDouble());
  EXPECT_LE(events[0].at({"t_ns"})->asDouble(), events[2].at({"t_ns"})->asDouble());
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheLastCapacityEvents) {
  auto& rec = FlightRecorder::instance();
  for (int i = 0; i < 40; ++i)
    rec.record(FlightKind::Marker, "event-" + std::to_string(i));
  EXPECT_EQ(rec.recorded(), 40u);
  ASSERT_TRUE(rec.dump("wraparound"));

  const auto doc = json::parseFile(rec.dumpPath());
  const auto& events = doc.at({"events"})->asArray();
  ASSERT_EQ(events.size(), 16u);  // capacity from SetUp
  // Oldest first, and only the newest 16 (24..39) survive the wrap.
  EXPECT_EQ(events.front().at({"text"})->asString(), "event-24");
  EXPECT_EQ(events.back().at({"text"})->asString(), "event-39");
}

TEST_F(FlightRecorderTest, OverlongTextIsTruncatedNotCorrupted) {
  auto& rec = FlightRecorder::instance();
  const std::string longText(400, 'x');
  rec.record(FlightKind::Log, longText);
  ASSERT_TRUE(rec.dump("truncate"));
  const auto doc = json::parseFile(rec.dumpPath());
  const auto text = doc.at({"events"})->asArray().at(0).at({"text"})->asString();
  EXPECT_LT(text.size(), FlightRecorder::kTextMax);
  EXPECT_EQ(text, std::string(text.size(), 'x'));
}

TEST_F(FlightRecorderTest, SpecialCharactersAreEscaped) {
  auto& rec = FlightRecorder::instance();
  rec.record(FlightKind::Log, "quote\" backslash\\ newline\n ctrl\x01");
  ASSERT_TRUE(rec.dump("escapes"));
  // parseFile rejects unescaped control characters — surviving the round
  // trip is the whole assertion.
  const auto doc = json::parseFile(rec.dumpPath());
  const auto text = doc.at({"events"})->asArray().at(0).at({"text"})->asString();
  EXPECT_NE(text.find("quote\""), std::string::npos);
  EXPECT_NE(text.find("backslash\\"), std::string::npos);
}

TEST_F(FlightRecorderTest, LogLinesAreMirroredIntoTheRing) {
  auto& rec = FlightRecorder::instance();
  logWarn("recorder sees this");
  ASSERT_GE(rec.recorded(), 1u);
  ASSERT_TRUE(rec.dump("logs"));
  EXPECT_NE(slurp(rec.dumpPath()).find("recorder sees this"),
            std::string::npos);
}

TEST_F(FlightRecorderTest, EntriesSurviveDisableEnableOfSameCapacity) {
  auto& rec = FlightRecorder::instance();
  rec.record(FlightKind::Marker, "pre-disable");
  rec.disable();
  rec.enable(16);
  rec.record(FlightKind::Marker, "post-enable");
  ASSERT_TRUE(rec.dump("cycle"));
  const auto text = slurp(rec.dumpPath());
  EXPECT_NE(text.find("pre-disable"), std::string::npos);
  EXPECT_NE(text.find("post-enable"), std::string::npos);
}

TEST_F(FlightRecorderTest, OverlongDumpDirectoryRejected) {
  auto& rec = FlightRecorder::instance();
  EXPECT_FALSE(rec.setDumpDirectory(std::string(4096, 'd')));
  // The previous (valid) directory is untouched.
  EXPECT_TRUE(rec.dump("still-works"));
  EXPECT_TRUE(std::filesystem::exists(rec.dumpPath()));
}

TEST_F(FlightRecorderTest, SignalHandlerBodyWritesValidJson) {
  auto& rec = FlightRecorder::instance();
  flightRecord(FlightKind::Marker, "about to crash");
  // The handler body minus the re-raise: must be dumpable from signal
  // context, so this path allocates nothing — but from a test we can
  // validate its output with the full parser.
  crashDumpForTesting(SIGABRT);
  const auto doc = json::parseFile(rec.dumpPath());
  EXPECT_EQ(doc.at({"reason"})->asString(), "SIGABRT");
  EXPECT_NE(slurp(rec.dumpPath()).find("about to crash"), std::string::npos);
  crashDumpForTesting(SIGSEGV);
  EXPECT_EQ(json::parseFile(rec.dumpPath()).at({"reason"})->asString(),
            "SIGSEGV");
}

TEST_F(FlightRecorderTest, InstallCrashHandlersIsIdempotent) {
  installCrashHandlers();
  installCrashHandlers();  // second call must be a no-op, not a crash
}

}  // namespace
}  // namespace unveil::support
