/// \file test_faulty_stream.cpp
/// Fault-injection shim: spec parsing, the stream decorator itself, and the
/// regression that motivated it — writers that reported success after the
/// OS swallowed the bytes (ENOSPC), and readers that crashed instead of
/// raising TraceError when the device lied.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "test_util.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"

namespace unveil {
namespace {

using support::FaultSpec;
using support::FaultyStreamBuf;
using support::kFaultNever;

class FaultyStreamTest : public ::testing::Test {
 protected:
  void TearDown() override {
    support::setFaultSpecForTesting(std::nullopt);
    ::unsetenv("UNVEIL_FAULT_SPEC");
  }

  static std::string tmpPath(const std::string& name) {
    return ::testing::TempDir() + name;
  }

  static trace::Trace sampleTrace() {
    testutil::SyntheticSpec spec;
    spec.bursts = 8;
    return testutil::makeSyntheticTrace(spec);
  }
};

TEST_F(FaultyStreamTest, ParseReadsAllKeys) {
  const FaultSpec spec = FaultSpec::parse(
      "fail-read-after=10,fail-write-after=20,flip-byte-at=5,flip-mask=3,"
      "short-read-max=7");
  EXPECT_EQ(spec.failReadAfter, 10u);
  EXPECT_EQ(spec.failWriteAfter, 20u);
  EXPECT_EQ(spec.flipByteAt, 5u);
  EXPECT_EQ(spec.flipMask, 3u);
  EXPECT_EQ(spec.shortReadMax, 7u);
  EXPECT_TRUE(spec.any());
}

TEST_F(FaultyStreamTest, ParseDefaultsAreInert) {
  const FaultSpec spec = FaultSpec::parse("");
  EXPECT_EQ(spec.failReadAfter, kFaultNever);
  EXPECT_EQ(spec.failWriteAfter, kFaultNever);
  EXPECT_EQ(spec.flipByteAt, kFaultNever);
  EXPECT_FALSE(spec.any());
}

TEST_F(FaultyStreamTest, ParseRejectsGarbage) {
  EXPECT_THROW((void)FaultSpec::parse("fail-read-after"), ConfigError);
  EXPECT_THROW((void)FaultSpec::parse("fail-read-after=x"), ConfigError);
  EXPECT_THROW((void)FaultSpec::parse("no-such-key=1"), ConfigError);
}

TEST_F(FaultyStreamTest, ShortReadsAreTransparent) {
  // A device returning few bytes per read() must not change what a caller
  // that loops (as istream does) ultimately sees.
  const std::string payload = "the quick brown fox jumps over the lazy dog";
  std::istringstream src(payload);
  FaultSpec spec;
  spec.shortReadMax = 3;
  FaultyStreamBuf buf(src.rdbuf(), spec);
  std::istream is(&buf);
  std::ostringstream got;
  got << is.rdbuf();
  EXPECT_EQ(got.str(), payload);
}

TEST_F(FaultyStreamTest, ReadFailsAtConfiguredOffset) {
  std::istringstream src(std::string(100, 'x'));
  FaultSpec spec;
  spec.failReadAfter = 10;
  FaultyStreamBuf buf(src.rdbuf(), spec);
  std::istream is(&buf);
  std::string got(100, '\0');
  is.read(got.data(), 100);
  EXPECT_EQ(is.gcount(), 10);
}

TEST_F(FaultyStreamTest, FlipByteCorruptsExactlyOnePosition) {
  std::istringstream src(std::string(8, '\0'));
  FaultSpec spec;
  spec.flipByteAt = 3;
  spec.flipMask = 0x80;
  FaultyStreamBuf buf(src.rdbuf(), spec);
  std::istream is(&buf);
  std::string got(8, 'x');
  is.read(got.data(), 8);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(static_cast<unsigned char>(got[i]), i == 3 ? 0x80 : 0x00) << i;
}

// --- the ENOSPC regression -------------------------------------------------
// Before this fix, writeFile/writeBinaryFile never examined the stream after
// writing: a full disk produced a silently truncated file and a success
// return. With a write fault injected they must throw, and the error must
// name the file.

TEST_F(FaultyStreamTest, TextWriterDetectsWriteFailure) {
  FaultSpec spec;
  spec.failWriteAfter = 64;
  support::setFaultSpecForTesting(spec);
  const std::string path = tmpPath("faulty_text.trace");
  try {
    trace::writeFile(sampleTrace(), path);
    FAIL() << "writeFile reported success under injected write failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST_F(FaultyStreamTest, BinaryWriterDetectsWriteFailure) {
  FaultSpec spec;
  spec.failWriteAfter = 64;
  support::setFaultSpecForTesting(spec);
  const std::string path = tmpPath("faulty_bin.utb");
  EXPECT_THROW(trace::writeBinaryFile(sampleTrace(), path), Error);
}

TEST_F(FaultyStreamTest, WritersSucceedWithInertSpecInstalled) {
  support::setFaultSpecForTesting(FaultSpec{});  // all thresholds kFaultNever
  const std::string path = tmpPath("inert_spec.utb");
  EXPECT_NO_THROW(trace::writeBinaryFile(sampleTrace(), path));
}

TEST_F(FaultyStreamTest, ReaderSurfacesTruncationAsTraceError) {
  const std::string path = tmpPath("faulty_read.utb");
  trace::writeBinaryFile(sampleTrace(), path);
  FaultSpec spec;
  spec.failReadAfter = 40;  // inside the header/table region
  support::setFaultSpecForTesting(spec);
  try {
    (void)trace::readBinaryFile(path);
    FAIL() << "readBinaryFile succeeded under injected read failure";
  } catch (const TraceError& e) {
    // File context must be attached at the outermost boundary.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST_F(FaultyStreamTest, ReaderSurvivesBitFlip) {
  const std::string path = tmpPath("faulty_flip.utb");
  trace::writeBinaryFile(sampleTrace(), path);
  // Flip a byte somewhere in the shard data: the parse must either succeed
  // (flip landed in slack) or raise TraceError — never crash.
  for (std::uint64_t at = 8; at < 200; at += 17) {
    FaultSpec spec;
    spec.flipByteAt = at;
    spec.flipMask = 0xff;
    support::setFaultSpecForTesting(spec);
    try {
      (void)trace::readBinaryFile(path, {.strict = false});
    } catch (const Error&) {
      // clean rejection is acceptable
    }
  }
}

TEST_F(FaultyStreamTest, EnvVarActivatesInjection) {
  ::setenv("UNVEIL_FAULT_SPEC", "fail-write-after=16", 1);
  const std::string path = tmpPath("env_spec.trace");
  EXPECT_THROW(trace::writeFile(sampleTrace(), path), Error);
  ::unsetenv("UNVEIL_FAULT_SPEC");
  EXPECT_NO_THROW(trace::writeFile(sampleTrace(), path));
}

TEST_F(FaultyStreamTest, TestOverrideBeatsEnvVar) {
  ::setenv("UNVEIL_FAULT_SPEC", "fail-write-after=16", 1);
  support::setFaultSpecForTesting(FaultSpec{});  // inert override
  const std::string path = tmpPath("override.trace");
  EXPECT_NO_THROW(trace::writeFile(sampleTrace(), path));
}

}  // namespace
}  // namespace unveil
