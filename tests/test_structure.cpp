/// Tests for structure recovery: per-rank sequences and period detection
/// (parameterized over period/length/noise combinations).

#include <gtest/gtest.h>

#include "unveil/cluster/structure.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::cluster {
namespace {

TEST(Sequences, SplitsAndSortsByTime) {
  std::vector<Burst> bursts(4);
  bursts[0].rank = 1;
  bursts[0].begin = 200;
  bursts[1].rank = 0;
  bursts[1].begin = 100;
  bursts[2].rank = 0;
  bursts[2].begin = 50;
  bursts[3].rank = 1;
  bursts[3].begin = 100;
  Clustering c;
  c.labels = {0, 1, 2, 3};
  c.numClusters = 4;
  const auto seqs = clusterSequences(bursts, c);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].rank, 0u);
  EXPECT_EQ(seqs[0].labels, (std::vector<int>{2, 1}));
  EXPECT_EQ(seqs[1].labels, (std::vector<int>{3, 0}));
}

TEST(Sequences, SizeMismatchRejected) {
  std::vector<Burst> bursts(2);
  Clustering c;
  c.labels = {0};
  EXPECT_THROW((void)clusterSequences(bursts, c), ConfigError);
}

struct PeriodCase {
  std::string name;
  std::size_t period;
  std::size_t repeats;
  double noiseFrac;  ///< Fraction of positions replaced with noise label.
};

class PeriodDetection : public ::testing::TestWithParam<PeriodCase> {};

TEST_P(PeriodDetection, FindsPlantedPeriod) {
  const auto& pc = GetParam();
  support::Rng rng(11, pc.name);
  std::vector<int> seq;
  for (std::size_t r = 0; r < pc.repeats; ++r)
    for (std::size_t p = 0; p < pc.period; ++p)
      seq.push_back(static_cast<int>(p));
  for (auto& label : seq)
    if (rng.bernoulli(pc.noiseFrac)) label = kNoiseLabel;
  const auto result = detectPeriod(seq);
  EXPECT_EQ(result.period, pc.period);
  EXPECT_GE(result.matchFraction, 0.9);
  ASSERT_EQ(result.signature.size(), pc.period);
  for (std::size_t p = 0; p < pc.period; ++p)
    EXPECT_EQ(result.signature[p], static_cast<int>(p));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PeriodDetection,
    ::testing::Values(PeriodCase{"p3clean", 3, 50, 0.0},
                      PeriodCase{"p4clean", 4, 40, 0.0},
                      PeriodCase{"p7clean", 7, 20, 0.0},
                      PeriodCase{"p3noisy", 3, 60, 0.05},
                      PeriodCase{"p5noisy", 5, 40, 0.10},
                      PeriodCase{"p2heavyNoise", 2, 100, 0.20}),
    [](const ::testing::TestParamInfo<PeriodCase>& info) { return info.param.name; });

TEST(PeriodDetection, ConstantSequenceHasPeriodOne) {
  const std::vector<int> seq(20, 5);
  const auto result = detectPeriod(seq);
  EXPECT_EQ(result.period, 1u);
  EXPECT_EQ(result.signature, (std::vector<int>{5}));
}

TEST(PeriodDetection, RandomSequenceHasNone) {
  support::Rng rng(17, "rand");
  std::vector<int> seq;
  for (int i = 0; i < 200; ++i)
    seq.push_back(static_cast<int>(rng.uniformInt(0, 30)));
  EXPECT_EQ(detectPeriod(seq, 16).period, 0u);
}

TEST(PeriodDetection, TooShortSequence) {
  const std::vector<int> seq = {1, 2, 1};
  EXPECT_EQ(detectPeriod(seq).period, 0u);
}

TEST(PeriodDetection, RespectsMaxPeriod) {
  std::vector<int> seq;
  for (int r = 0; r < 20; ++r)
    for (int p = 0; p < 10; ++p) seq.push_back(p);
  EXPECT_EQ(detectPeriod(seq, 5).period, 0u);
  EXPECT_EQ(detectPeriod(seq, 10).period, 10u);
}

TEST(GlobalPeriod, MajorityWins) {
  std::vector<RankSequence> seqs(3);
  for (int r = 0; r < 3; ++r) {
    seqs[static_cast<std::size_t>(r)].rank = static_cast<trace::Rank>(r);
    const std::size_t period = (r == 2) ? 5 : 3;  // ranks 0,1 agree on 3
    for (std::size_t rep = 0; rep < 30; ++rep)
      for (std::size_t p = 0; p < period; ++p)
        seqs[static_cast<std::size_t>(r)].labels.push_back(static_cast<int>(p));
  }
  const auto result = detectGlobalPeriod(seqs);
  EXPECT_EQ(result.period, 3u);
}

TEST(GlobalPeriod, EmptyInput) {
  EXPECT_EQ(detectGlobalPeriod({}).period, 0u);
}

TEST(SpmdScore, PureSpmdIsOne) {
  // Two ranks, both executing clusters 0 and 1.
  std::vector<Burst> bursts(4);
  bursts[0].rank = 0;
  bursts[1].rank = 0;
  bursts[2].rank = 1;
  bursts[3].rank = 1;
  Clustering c;
  c.labels = {0, 1, 0, 1};
  c.numClusters = 2;
  EXPECT_DOUBLE_EQ(spmdScore(bursts, c, 2), 1.0);
}

TEST(SpmdScore, RankSpecializedIsLow) {
  // Each cluster executed by exactly one of 4 ranks.
  std::vector<Burst> bursts(4);
  Clustering c;
  c.labels = {0, 1, 2, 3};
  c.numClusters = 4;
  for (std::size_t i = 0; i < 4; ++i) bursts[i].rank = static_cast<trace::Rank>(i);
  EXPECT_DOUBLE_EQ(spmdScore(bursts, c, 4), 0.25);
}

TEST(SpmdScore, NoiseExcluded) {
  std::vector<Burst> bursts(3);
  bursts[0].rank = 0;
  bursts[1].rank = 1;
  bursts[2].rank = 1;  // noise burst on rank 1
  Clustering c;
  c.labels = {0, 0, kNoiseLabel};
  c.numClusters = 1;
  EXPECT_DOUBLE_EQ(spmdScore(bursts, c, 2), 1.0);
}

TEST(SpmdScore, WeightedByClusterSize) {
  // Cluster 0: 3 members on both ranks (coverage 1); cluster 1: 1 member on
  // one rank (coverage 0.5) -> (3*1 + 1*0.5)/4.
  std::vector<Burst> bursts(4);
  bursts[0].rank = 0;
  bursts[1].rank = 1;
  bursts[2].rank = 0;
  bursts[3].rank = 0;
  Clustering c;
  c.labels = {0, 0, 0, 1};
  c.numClusters = 2;
  EXPECT_DOUBLE_EQ(spmdScore(bursts, c, 2), (3.0 * 1.0 + 1.0 * 0.5) / 4.0);
}

TEST(SpmdScore, Validation) {
  std::vector<Burst> bursts(1);
  Clustering c;
  c.labels = {0, 1};
  EXPECT_THROW((void)spmdScore(bursts, c, 2), ConfigError);
  c.labels = {0};
  EXPECT_THROW((void)spmdScore(bursts, c, 0), ConfigError);
}

TEST(SpmdScore, AllNoiseIsOne) {
  std::vector<Burst> bursts(2);
  Clustering c;
  c.labels = {kNoiseLabel, kNoiseLabel};
  EXPECT_DOUBLE_EQ(spmdScore(bursts, c, 2), 1.0);
}

}  // namespace
}  // namespace unveil::cluster
