/// Tests for unveil::support::Rng — determinism, substream independence and
/// distribution sanity. A reproducibility bug here silently corrupts every
/// experiment, so these are deliberately strict.

#include <gtest/gtest.h>

#include <set>

#include "unveil/support/rng.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::support {
namespace {

TEST(DeriveSeed, DeterministicAcrossCalls) {
  EXPECT_EQ(deriveSeed(1, "a"), deriveSeed(1, "a"));
  EXPECT_EQ(deriveSeed(42, "sampling/r0"), deriveSeed(42, "sampling/r0"));
}

TEST(DeriveSeed, LabelSensitive) {
  EXPECT_NE(deriveSeed(1, "a"), deriveSeed(1, "b"));
  EXPECT_NE(deriveSeed(1, "ab"), deriveSeed(1, "ba"));
  EXPECT_NE(deriveSeed(1, ""), deriveSeed(1, "x"));
}

TEST(DeriveSeed, RootSensitive) {
  EXPECT_NE(deriveSeed(1, "a"), deriveSeed(2, "a"));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamsDiffer) {
  Rng a(7, "x"), b(7, "y");
  bool anyDiff = false;
  for (int i = 0; i < 10; ++i) anyDiff |= (a.next() != b.next());
  EXPECT_TRUE(anyDiff);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent(9);
  Rng child = parent.fork("c");
  const auto childFirst = child.next();
  // Parent keeps producing; child's sequence must not change retroactively.
  Rng parent2(9);
  Rng child2 = parent2.fork("c");
  EXPECT_EQ(childFirst, child2.next());
}

TEST(Rng, RepeatedForksDiffer) {
  Rng parent(9);
  Rng c1 = parent.fork("same");
  Rng c2 = parent.fork("same");
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniformInt(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(11);
  EXPECT_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 20001; ++i) v.push_back(rng.lognormalMedian(3.0, 0.5));
  EXPECT_NEAR(median(v), 3.0, 0.1);
  for (double x : v) EXPECT_GT(x, 0.0);
}

TEST(Rng, LognormalZeroSigma) {
  Rng rng(13);
  EXPECT_EQ(rng.lognormalMedian(2.5, 0.0), 2.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace unveil::support
