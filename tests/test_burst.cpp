/// Tests for burst extraction — both modes — and sample attachment.

#include <gtest/gtest.h>

#include "unveil/cluster/burst.hpp"
#include "unveil/support/error.hpp"
#include "test_util.hpp"

namespace unveil::cluster {
namespace {

TEST(BurstExtraction, PhaseEventsYieldOneBurstPerInstance) {
  testutil::SyntheticSpec spec;
  spec.bursts = 20;
  spec.samplesPerBurst = 4;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = BurstExtraction{}.fromPhaseEvents(trace);
  ASSERT_EQ(bursts.size(), 20u);
  for (const auto& b : bursts) {
    EXPECT_EQ(b.rank, 0u);
    EXPECT_EQ(b.truthPhase, spec.phaseId);
    EXPECT_EQ(b.durationNs(), spec.burstNs);
    EXPECT_EQ(b.sampleCount, 4u);
    EXPECT_EQ(b.delta()[counters::CounterId::TotIns],
              static_cast<std::uint64_t>(spec.totalIns));
  }
}

TEST(BurstExtraction, SamplesAttachedAreInsideWindow) {
  testutil::SyntheticSpec spec;
  spec.bursts = 10;
  spec.samplesPerBurst = 6;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = BurstExtraction{}.fromPhaseEvents(trace);
  std::size_t attached = 0;
  for (const auto& b : bursts) {
    for (std::size_t si = b.sampleFirst; si < b.sampleFirst + b.sampleCount;
         ++si) {
      const auto& s = trace.samples()[si];
      EXPECT_EQ(s.rank, b.rank);
      EXPECT_GE(s.time, b.begin);
      EXPECT_LT(s.time, b.end);
      ++attached;
    }
  }
  EXPECT_EQ(attached, trace.samples().size());
}

TEST(BurstExtraction, RequiresFinalizedTrace) {
  trace::Trace t("x", 1);
  EXPECT_THROW((void)BurstExtraction{}.fromPhaseEvents(t), TraceError);
  EXPECT_THROW((void)BurstExtraction{}.fromMpiGaps(t), TraceError);
}

TEST(BurstExtraction, UnbalancedEventsRejected) {
  trace::Trace t("x", 1);
  trace::Event e;
  e.rank = 0;
  e.time = 10;
  e.kind = trace::EventKind::PhaseEnd;  // end without begin
  e.value = 0;
  t.addEvent(e);
  t.finalize();
  EXPECT_THROW((void)BurstExtraction{}.fromPhaseEvents(t), TraceError);
}

TEST(BurstExtraction, NestedBeginsRejected) {
  trace::Trace t("x", 1);
  trace::Event e;
  e.rank = 0;
  e.time = 10;
  e.kind = trace::EventKind::PhaseBegin;
  t.addEvent(e);
  e.time = 20;
  t.addEvent(e);
  t.finalize();
  EXPECT_THROW((void)BurstExtraction{}.fromPhaseEvents(t), TraceError);
}

TEST(BurstExtraction, MinDurationFilters) {
  testutil::SyntheticSpec spec;
  spec.bursts = 5;
  const auto trace = testutil::makeSyntheticTrace(spec);
  BurstExtraction ex;
  ex.minDurationNs = spec.burstNs * 2;  // all bursts too short
  EXPECT_TRUE(ex.fromPhaseEvents(trace).empty());
}

TEST(BurstExtraction, MpiGapsFindBursts) {
  testutil::SyntheticSpec spec;
  spec.bursts = 12;
  spec.samplesPerBurst = 3;
  const auto trace = testutil::makeSyntheticTrace(spec);
  // Gap bursts span MpiEnd -> next MpiBegin, i.e. the phase computation plus
  // the surrounding probe gap; the synthetic trace has one MPI pair per
  // burst, so there are bursts-1 interior gaps (plus no prologue anchor
  // before the first MPI here because phase events precede it).
  const auto bursts = BurstExtraction{}.fromMpiGaps(trace);
  ASSERT_GE(bursts.size(), spec.bursts - 1);
  for (const auto& b : bursts) {
    EXPECT_EQ(b.truthPhase, kNoPhase);
    EXPECT_GT(b.durationNs(), 0u);
  }
}

TEST(BurstExtraction, MpiGapsMergeAdjacentPhases) {
  // In wavesim, the sweep and the pointwise update are not separated by MPI,
  // so MPI-gap extraction must merge them into one burst: per iteration the
  // gaps are [allreduce -> sends] (halo pack) and [recv -> allreduce]
  // (sweep + update) plus communication-internal gaps between sends/recvs.
  const auto& run = testutil::smallWavesimRun();
  const auto phaseBursts = BurstExtraction{}.fromPhaseEvents(run.trace);
  BurstExtraction gapEx;
  gapEx.minDurationNs = 50'000;  // ignore inter-MPI micro gaps
  const auto gapBursts = gapEx.fromMpiGaps(run.trace);
  EXPECT_LT(gapBursts.size(), phaseBursts.size());
  // The longest gap burst must cover sweep + update (> 2.4 ms on average),
  // longer than any single phase burst (~2.1 ms).
  trace::TimeNs longestGap = 0;
  for (const auto& b : gapBursts) longestGap = std::max(longestGap, b.durationNs());
  trace::TimeNs longestPhase = 0;
  for (const auto& b : phaseBursts)
    longestPhase = std::max(longestPhase, b.durationNs());
  EXPECT_GT(longestGap, longestPhase);
}

TEST(BurstExtraction, SimulatedRunRoundTrip) {
  const auto& run = testutil::smallWavesimRun();
  const auto bursts = BurstExtraction{}.fromPhaseEvents(run.trace);
  EXPECT_EQ(bursts.size(), run.truth.bursts.size());
  // Every attached sample's counters are bracketed by the burst endpoints.
  for (const auto& b : bursts) {
    for (std::size_t si = b.sampleFirst; si < b.sampleFirst + b.sampleCount;
         ++si) {
      const auto& s = run.trace.samples()[si];
      for (counters::CounterId id : counters::kAllCounters) {
        EXPECT_GE(s.counters[id], b.beginCounters[id]);
        EXPECT_LE(s.counters[id], b.endCounters[id]);
      }
    }
  }
}

TEST(BurstExtraction, BurstsSortedByRankThenTime) {
  const auto& run = testutil::smallWavesimRun();
  const auto bursts = BurstExtraction{}.fromPhaseEvents(run.trace);
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    const bool ordered = bursts[i - 1].rank < bursts[i].rank ||
                         (bursts[i - 1].rank == bursts[i].rank &&
                          bursts[i - 1].begin <= bursts[i].begin);
    EXPECT_TRUE(ordered);
  }
}

}  // namespace
}  // namespace unveil::cluster
