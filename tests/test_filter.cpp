/// Tests for trace slicing (time windows, rank subsets).

#include <gtest/gtest.h>

#include "unveil/support/error.hpp"
#include "unveil/trace/filter.hpp"
#include "test_util.hpp"

namespace unveil::trace {
namespace {

TEST(SliceTime, RejectsEmptyWindow) {
  const auto& run = testutil::smallWavesimRun();
  EXPECT_THROW((void)sliceTime(run.trace, 100, 100), ConfigError);
  EXPECT_THROW((void)sliceTime(run.trace, 200, 100), ConfigError);
}

TEST(SliceTime, KeepsOnlyWindowRecords) {
  const auto& run = testutil::smallWavesimRun();
  const TimeNs mid = run.trace.durationNs() / 2;
  const auto cut = sliceTime(run.trace, 0, mid);
  EXPECT_GT(cut.events().size(), 0u);
  EXPECT_LT(cut.events().size(), run.trace.events().size());
  for (const auto& e : cut.events()) EXPECT_LT(e.time, mid);
  for (const auto& s : cut.samples()) EXPECT_LT(s.time, mid);
  for (const auto& st : cut.states()) EXPECT_LE(st.end, mid);
}

TEST(SliceTime, ClipsStateIntervals) {
  Trace t("x", 1);
  StateInterval iv;
  iv.rank = 0;
  iv.begin = 100;
  iv.end = 500;
  iv.state = State::Compute;
  t.addState(iv);
  t.setDurationNs(1000);
  t.finalize();
  const auto cut = sliceTime(t, 200, 400);
  ASSERT_EQ(cut.states().size(), 1u);
  EXPECT_EQ(cut.states()[0].begin, 200u);
  EXPECT_EQ(cut.states()[0].end, 400u);
}

TEST(SliceTime, ResultIsFinalizedAndAnalyzable) {
  const auto& run = testutil::smallWavesimRun();
  // Skip the first quarter (an analyst cutting initialization).
  const auto cut =
      sliceTime(run.trace, run.trace.durationNs() / 4, run.trace.durationNs());
  EXPECT_TRUE(cut.finalized());
  // Counters inside the cut still satisfy monotonicity (finalize validated).
  EXPECT_GT(cut.samples().size(), 0u);
}

TEST(SelectRanks, Validation) {
  const auto& run = testutil::smallWavesimRun();
  EXPECT_THROW((void)selectRanks(run.trace, {}), ConfigError);
  EXPECT_THROW((void)selectRanks(run.trace, {99}), ConfigError);
}

TEST(SelectRanks, KeepsOnlyListed) {
  const auto& run = testutil::smallWavesimRun();
  const auto cut = selectRanks(run.trace, {1, 3});
  EXPECT_GT(cut.events().size(), 0u);
  for (const auto& e : cut.events()) EXPECT_TRUE(e.rank == 1 || e.rank == 3);
  for (const auto& s : cut.samples()) EXPECT_TRUE(s.rank == 1 || s.rank == 3);
  EXPECT_EQ(cut.numRanks(), run.trace.numRanks());  // ids preserved
}

TEST(SelectRanks, CountsSplitExactly) {
  const auto& run = testutil::smallWavesimRun();
  const auto a = selectRanks(run.trace, {0, 1});
  const auto b = selectRanks(run.trace, {2, 3});
  EXPECT_EQ(a.events().size() + b.events().size(), run.trace.events().size());
  EXPECT_EQ(a.samples().size() + b.samples().size(), run.trace.samples().size());
}

}  // namespace
}  // namespace unveil::trace
