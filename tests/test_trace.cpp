/// Tests for the Trace container: sorting, validation invariants, stats.

#include <gtest/gtest.h>

#include "unveil/support/error.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::trace {
namespace {

Event makeEvent(Rank r, TimeNs t, EventKind k, std::uint32_t v,
                std::uint64_t ins = 0) {
  Event e;
  e.rank = r;
  e.time = t;
  e.kind = k;
  e.value = v;
  e.counters[counters::CounterId::TotIns] = ins;
  return e;
}

TEST(Trace, RequiresRanks) { EXPECT_THROW(Trace("x", 0), ConfigError); }

TEST(Trace, FinalizeSortsByRankTime) {
  Trace t("x", 2);
  t.addEvent(makeEvent(1, 50, EventKind::PhaseBegin, 0));
  t.addEvent(makeEvent(0, 100, EventKind::PhaseBegin, 0));
  t.addEvent(makeEvent(0, 10, EventKind::PhaseEnd, 0));
  t.finalize();
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events()[0].rank, 0u);
  EXPECT_EQ(t.events()[0].time, 10u);
  EXPECT_EQ(t.events()[1].time, 100u);
  EXPECT_EQ(t.events()[2].rank, 1u);
}

TEST(Trace, DurationInferredFromRecords) {
  Trace t("x", 1);
  t.addEvent(makeEvent(0, 500, EventKind::PhaseBegin, 0));
  Sample s;
  s.rank = 0;
  s.time = 900;
  t.addSample(s);
  t.finalize();
  EXPECT_EQ(t.durationNs(), 900u);
}

TEST(Trace, ExplicitDurationValidated) {
  Trace t("x", 1);
  t.setDurationNs(100);
  t.addEvent(makeEvent(0, 500, EventKind::PhaseBegin, 0));
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, RankOutOfRangeRejected) {
  Trace t("x", 2);
  t.addEvent(makeEvent(5, 10, EventKind::PhaseBegin, 0));
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, SampleRankOutOfRangeRejected) {
  Trace t("x", 1);
  Sample s;
  s.rank = 3;
  s.time = 10;
  t.addSample(s);
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, StateIntervalValidation) {
  Trace t("x", 1);
  StateInterval iv;
  iv.rank = 0;
  iv.begin = 100;
  iv.end = 50;  // inverted
  t.addState(iv);
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, CounterRegressionDetected) {
  Trace t("x", 1);
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0, 100));
  t.addEvent(makeEvent(0, 20, EventKind::PhaseEnd, 0, 50));  // regression
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, CounterRegressionAcrossSamplesDetected) {
  Trace t("x", 1);
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0, 100));
  Sample s;
  s.rank = 0;
  s.time = 15;
  s.counters[counters::CounterId::TotIns] = 80;  // below the event at t=10
  t.addSample(s);
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, EqualTimeRecordsAreUnordered) {
  // A sample and an event at the same rounded timestamp may carry different
  // counts; that must NOT be a regression (see validation time groups).
  Trace t("x", 1);
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0, 0));
  Sample s;
  s.rank = 0;
  s.time = 20;
  s.counters[counters::CounterId::TotIns] = 90;
  t.addSample(s);
  t.addEvent(makeEvent(0, 20, EventKind::PhaseEnd, 0, 100));
  EXPECT_NO_THROW(t.finalize());
}

TEST(Trace, RegressionAcrossTimeGroupsStillDetected) {
  Trace t("x", 1);
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0, 100));
  Sample s;
  s.rank = 0;
  s.time = 20;
  s.counters[counters::CounterId::TotIns] = 90;  // later time, lower count
  t.addSample(s);
  EXPECT_THROW(t.finalize(), TraceError);
}

TEST(Trace, CountersIndependentAcrossRanks) {
  Trace t("x", 2);
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0, 1000));
  t.addEvent(makeEvent(1, 20, EventKind::PhaseBegin, 0, 5));  // lower but rank 1
  EXPECT_NO_THROW(t.finalize());
}

TEST(Trace, StatsCounts) {
  Trace t("x", 1);
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0));
  t.addEvent(makeEvent(0, 20, EventKind::PhaseEnd, 0));
  Sample s;
  s.rank = 0;
  s.time = 15;
  t.addSample(s);
  StateInterval iv;
  iv.rank = 0;
  iv.begin = 10;
  iv.end = 20;
  t.addState(iv);
  t.finalize();
  const auto stats = t.stats();
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.samples, 1u);
  EXPECT_EQ(stats.states, 1u);
  EXPECT_EQ(stats.totalRecords, 4u);
  EXPECT_GT(stats.estimatedBytes, 0u);
}

TEST(Trace, FinalizedFlagResetOnAppend) {
  Trace t("x", 1);
  t.finalize();
  EXPECT_TRUE(t.finalized());
  t.addEvent(makeEvent(0, 10, EventKind::PhaseBegin, 0));
  EXPECT_FALSE(t.finalized());
}

TEST(TraceNames, MpiOpNames) {
  EXPECT_STREQ(mpiOpName(MpiOp::Allreduce), "MPI_Allreduce");
  EXPECT_STREQ(mpiOpName(MpiOp::Send), "MPI_Send");
}

TEST(TraceNames, StateNames) {
  EXPECT_STREQ(stateName(State::Compute), "compute");
  EXPECT_STREQ(stateName(State::Mpi), "mpi");
  EXPECT_STREQ(stateName(State::Idle), "idle");
}

}  // namespace
}  // namespace unveil::trace
