/// Tests for the k-means baseline.

#include <gtest/gtest.h>

#include "unveil/cluster/kmeans.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::cluster {
namespace {

FeatureMatrix makeBlobs(std::size_t blobs, std::size_t per, std::uint64_t seed = 1) {
  support::Rng rng(seed, "kmblobs");
  FeatureMatrix m(blobs * per, 2);
  for (std::size_t b = 0; b < blobs; ++b) {
    for (std::size_t i = 0; i < per; ++i) {
      const std::size_t row = b * per + i;
      m.at(row, 0) = rng.normal(static_cast<double>(b) * 8.0, 0.2);
      m.at(row, 1) = rng.normal(static_cast<double>(b % 2) * 6.0, 0.2);
    }
  }
  return m;
}

TEST(KmeansParams, Validation) {
  KmeansParams p;
  p.k = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = KmeansParams{};
  p.maxIterations = 0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Kmeans, FewerPointsThanClustersRejected) {
  const FeatureMatrix m(2, 2);
  KmeansParams p;
  p.k = 3;
  EXPECT_THROW((void)kmeans(m, p), AnalysisError);
}

TEST(Kmeans, RecoversWellSeparatedBlobs) {
  const auto m = makeBlobs(3, 80);
  KmeansParams p;
  p.k = 3;
  const auto result = kmeans(m, p);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.clustering.numClusters, 3u);
  // Each blob uniformly labelled.
  for (std::size_t b = 0; b < 3; ++b) {
    const int label = result.clustering.labels[b * 80];
    for (std::size_t i = 0; i < 80; ++i)
      EXPECT_EQ(result.clustering.labels[b * 80 + i], label);
  }
}

TEST(Kmeans, NoNoiseLabels) {
  const auto m = makeBlobs(2, 30);
  KmeansParams p;
  p.k = 2;
  const auto result = kmeans(m, p);
  for (int l : result.clustering.labels) EXPECT_GE(l, 0);
}

TEST(Kmeans, DeterministicPerSeed) {
  const auto m = makeBlobs(3, 40);
  KmeansParams p;
  p.k = 3;
  p.seed = 42;
  const auto a = kmeans(m, p);
  const auto b = kmeans(m, p);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
}

TEST(Kmeans, CentroidsNearBlobCenters) {
  const auto m = makeBlobs(2, 100);
  KmeansParams p;
  p.k = 2;
  const auto result = kmeans(m, p);
  ASSERT_EQ(result.centroids.size(), 2u);
  for (const auto& c : result.centroids) {
    ASSERT_EQ(c.size(), 2u);
    // Centers are (0,0) and (8,6); allow generous tolerance.
    const bool nearA = std::abs(c[0] - 0.0) < 0.5 && std::abs(c[1] - 0.0) < 0.5;
    const bool nearB = std::abs(c[0] - 8.0) < 0.5 && std::abs(c[1] - 6.0) < 0.5;
    EXPECT_TRUE(nearA || nearB);
  }
}

TEST(Kmeans, SizeOrderedLabels) {
  // Blob 0 has 120 points, blob 1 has 30 -> cluster 0 must be the big one.
  support::Rng rng(9, "sizes");
  FeatureMatrix m(150, 2);
  for (std::size_t i = 0; i < 120; ++i) {
    m.at(i, 0) = rng.normal(0.0, 0.1);
    m.at(i, 1) = rng.normal(0.0, 0.1);
  }
  for (std::size_t i = 120; i < 150; ++i) {
    m.at(i, 0) = rng.normal(10.0, 0.1);
    m.at(i, 1) = rng.normal(10.0, 0.1);
  }
  KmeansParams p;
  p.k = 2;
  const auto result = kmeans(m, p);
  EXPECT_EQ(result.clustering.clusterSize(0), 120u);
  EXPECT_EQ(result.clustering.clusterSize(1), 30u);
}

TEST(Kmeans, KEqualsNAssignsEachPointOwnCluster) {
  FeatureMatrix m(3, 1);
  m.at(0, 0) = 0.0;
  m.at(1, 0) = 10.0;
  m.at(2, 0) = 20.0;
  KmeansParams p;
  p.k = 3;
  const auto result = kmeans(m, p);
  std::set<int> labels(result.clustering.labels.begin(),
                       result.clustering.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

}  // namespace
}  // namespace unveil::cluster
