/// \file test_sample.cpp
/// Stratified-sampled DBSCAN: parameter validation, determinism (seed and
/// thread count), rare-stratum representation, and the sampled-vs-exact
/// agreement gate (ARI >= 0.95 on a fixed-seed blob corpus) that CI runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "unveil/cluster/quality.hpp"
#include "unveil/cluster/sample.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/thread_pool.hpp"

namespace {

using namespace unveil;

/// Gaussian blobs like the perf bench uses — the paper's dense-phase regime.
cluster::FeatureMatrix makeBlobs(std::size_t n, std::size_t blobs,
                                 std::uint64_t seed = 99) {
  support::Rng rng(seed, "blobs");
  cluster::FeatureMatrix m(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<double>(i % blobs);
    m.at(i, 0) = rng.normal(b * 3.0, 0.15);
    m.at(i, 1) = rng.normal(b * -2.0, 0.15);
  }
  return m;
}

/// Truth for ARI: noise (label < 0) mapped to a dedicated bucket.
std::vector<std::uint32_t> asTruth(const std::vector<int>& labels) {
  std::vector<std::uint32_t> truth(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    truth[i] = labels[i] < 0 ? 0u : static_cast<std::uint32_t>(labels[i]) + 1u;
  return truth;
}

TEST(StratifiedSampleParams, Validation) {
  cluster::StratifiedSampleParams p;
  p.validate();  // defaults are fine
  p.fraction = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p.fraction = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p.fraction = 0.05;
  p.minSample = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p.minSample = 10;
  p.maxSample = 5;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(StratifiedSample, DeterministicAndSorted) {
  const auto m = makeBlobs(5000, 4);
  cluster::StratifiedSampleParams p;
  p.fraction = 0.1;
  p.minSample = 100;
  const auto a = cluster::stratifiedSample(m, p);
  const auto b = cluster::stratifiedSample(m, p);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_TRUE(std::is_sorted(a.indices.begin(), a.indices.end()));
  EXPECT_GE(a.indices.size(), std::size_t{100});
  EXPECT_LT(a.indices.size(), m.rows());
  EXPECT_GT(a.strata, 1u);
  // Different seed, different selection (with overwhelming probability).
  cluster::StratifiedSampleParams p2 = p;
  p2.seed = 2;
  EXPECT_NE(cluster::stratifiedSample(m, p2).indices, a.indices);
}

TEST(StratifiedSample, EveryStratumKeepsRepresentation) {
  // 4000 points in one dense blob plus 20 in a far-away rare blob; a
  // uniform 1% draw would miss the rare blob often, the stratified draw
  // keeps at least one of its rows every time.
  cluster::FeatureMatrix m(4020, 2);
  support::Rng rng(5, "rare");
  for (std::size_t i = 0; i < 4000; ++i) {
    m.at(i, 0) = rng.normal(0.0, 0.1);
    m.at(i, 1) = rng.normal(0.0, 0.1);
  }
  for (std::size_t i = 4000; i < 4020; ++i) {
    m.at(i, 0) = rng.normal(50.0, 0.1);
    m.at(i, 1) = rng.normal(50.0, 0.1);
  }
  cluster::StratifiedSampleParams p;
  p.fraction = 0.01;
  p.minSample = 10;
  const auto s = cluster::stratifiedSample(m, p);
  EXPECT_TRUE(std::any_of(s.indices.begin(), s.indices.end(),
                          [](std::size_t i) { return i >= 4000; }));
}

TEST(StratifiedSample, FullFractionSelectsEverything) {
  const auto m = makeBlobs(300, 3);
  cluster::StratifiedSampleParams p;
  p.fraction = 1.0;
  const auto s = cluster::stratifiedSample(m, p);
  EXPECT_EQ(s.indices.size(), m.rows());
}

TEST(DbscanSampled, EmptyInput) {
  const cluster::FeatureMatrix m(0, 2);
  cluster::SampledDbscanParams p;
  const auto r = cluster::dbscanSampled(m, p);
  EXPECT_TRUE(r.clustering.labels.empty());
  EXPECT_EQ(r.clustering.numClusters, 0u);
  EXPECT_EQ(r.sampleSize, 0u);
}

TEST(DbscanSampled, AgreesWithExactOnBlobs) {
  // The CI quality gate: sampled clustering must reproduce exact DBSCAN's
  // partition with ARI >= 0.95 on the fixed-seed corpus.
  const auto m = makeBlobs(20000, 4);
  cluster::DbscanParams exactParams;
  exactParams.eps = 0.5;
  exactParams.minPts = 8;
  const auto exact = cluster::dbscan(m, exactParams);

  cluster::SampledDbscanParams p;
  p.dbscan = exactParams;
  p.sample.fraction = 0.05;
  const auto sampled = cluster::dbscanSampled(m, p);

  EXPECT_EQ(exact.numClusters, 4u);
  EXPECT_EQ(sampled.clustering.numClusters, 4u);
  EXPECT_GT(sampled.sampleSize, 0u);
  EXPECT_LT(sampled.sampleSize, m.rows());
  EXPECT_EQ(sampled.classified, m.rows() - sampled.sampleSize);

  const auto truth = asTruth(exact.labels);
  const double ari = cluster::adjustedRandIndex(sampled.clustering.labels, truth);
  EXPECT_GE(ari, 0.95) << "sampled clustering diverged from exact DBSCAN";
}

TEST(DbscanSampled, IdenticalForAnyThreadCount) {
  const auto m = makeBlobs(12000, 4);
  cluster::SampledDbscanParams p;
  p.dbscan.eps = 0.5;
  p.dbscan.minPts = 8;
  p.sample.fraction = 0.05;

  support::setGlobalThreads(1);
  const auto one = cluster::dbscanSampled(m, p);
  support::setGlobalThreads(8);
  const auto eight = cluster::dbscanSampled(m, p);
  support::setGlobalThreads(0);

  EXPECT_EQ(one.clustering.labels, eight.clustering.labels);
  EXPECT_EQ(one.sampleSize, eight.sampleSize);
  EXPECT_EQ(one.classified, eight.classified);
}

TEST(DbscanSampled, SampleCoveringAllRowsMatchesExactCores) {
  // fraction 1.0 degenerates to exact clustering of every row.
  const auto m = makeBlobs(1000, 3);
  cluster::DbscanParams exactParams;
  exactParams.eps = 0.5;
  exactParams.minPts = 8;
  cluster::SampledDbscanParams p;
  p.dbscan = exactParams;
  p.sample.fraction = 1.0;
  p.sample.minSample = 1;
  const auto sampled = cluster::dbscanSampled(m, p);
  const auto exact = cluster::dbscan(m, exactParams);
  EXPECT_EQ(sampled.clustering.labels, exact.labels);
  EXPECT_EQ(sampled.sampleSize, m.rows());
}

}  // namespace
