/// Tests for dispersion bands around folded reconstructions.

#include <gtest/gtest.h>

#include <algorithm>

#include "unveil/folding/band.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::folding {
namespace {

FoldedCounter noisyLinearCloud(std::size_t n, double noise, std::uint64_t seed = 1) {
  support::Rng rng(seed, "band");
  FoldedCounter f;
  f.instances = n;
  for (std::size_t i = 0; i < n; ++i) {
    FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = std::clamp(p.t + rng.normal(0.0, noise), 0.0, 1.0);
    f.points.push_back(p);
  }
  f.points.sortCanonical();
  return f;
}

TEST(BandParams, Validation) {
  BandParams p;
  p.sigmas = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = BandParams{};
  p.bins = 1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = BandParams{};
  p.gridPoints = 1;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Band, EmptyCloudRejected) {
  FoldedCounter f;
  EXPECT_THROW((void)foldBand(f), AnalysisError);
}

TEST(Band, EnvelopesOrderedAndMonotone) {
  const auto cloud = noisyLinearCloud(2000, 0.03);
  const auto band = foldBand(cloud);
  ASSERT_EQ(band.cumulativeLo.size(), band.t.size());
  for (std::size_t i = 0; i < band.t.size(); ++i) {
    EXPECT_LE(band.cumulativeLo[i], band.cumulativeHi[i] + 1e-12);
    EXPECT_LE(band.rateLo[i], band.rateHi[i] + 1e-12);
    EXPECT_GE(band.rateLo[i], 0.0);
    if (i > 0) {
      EXPECT_GE(band.cumulativeLo[i], band.cumulativeLo[i - 1] - 1e-12);
      EXPECT_GE(band.cumulativeHi[i], band.cumulativeHi[i - 1] - 1e-12);
    }
  }
  EXPECT_NEAR(band.cumulativeLo.front(), 0.0, 1e-9);
  EXPECT_NEAR(band.cumulativeHi.back(), 1.0, 1e-9);
}

TEST(Band, WidthTracksDispersion) {
  const auto tight = foldBand(noisyLinearCloud(2000, 0.005));
  const auto wide = foldBand(noisyLinearCloud(2000, 0.05));
  EXPECT_LT(tight.meanHalfWidth, wide.meanHalfWidth);
  EXPECT_NEAR(tight.meanHalfWidth, 0.005, 0.004);
  EXPECT_NEAR(wide.meanHalfWidth, 0.05, 0.02);
}

TEST(Band, SigmasScaleWidth) {
  const auto cloud = noisyLinearCloud(2000, 0.02);
  BandParams one;
  BandParams two;
  two.sigmas = 2.0;
  const auto a = foldBand(cloud, one);
  const auto b = foldBand(cloud, two);
  EXPECT_NEAR(b.meanHalfWidth / a.meanHalfWidth, 2.0, 0.05);
}

TEST(Band, NoiseFreeCloudHasNearZeroWidth) {
  const auto cloud = noisyLinearCloud(2000, 0.0);
  const auto band = foldBand(cloud);
  EXPECT_LT(band.meanHalfWidth, 1e-6);
  // Central rates ~1 everywhere.
  for (std::size_t i = 10; i + 10 < band.t.size(); ++i) {
    EXPECT_NEAR(band.rateLo[i], 1.0, 0.1);
    EXPECT_NEAR(band.rateHi[i], 1.0, 0.1);
  }
}

TEST(Band, ContainsTrueCurveMostOfTheTime) {
  const auto cloud = noisyLinearCloud(3000, 0.02, 5);
  BandParams p;
  p.sigmas = 2.0;
  const auto band = foldBand(cloud, p);
  std::size_t inside = 0;
  for (std::size_t i = 0; i < band.t.size(); ++i) {
    const double truth = band.t[i];  // linear cdf
    inside += (truth >= band.cumulativeLo[i] - 1e-9 &&
               truth <= band.cumulativeHi[i] + 1e-9)
                  ? 1
                  : 0;
  }
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(band.t.size()), 0.9);
}

}  // namespace
}  // namespace unveil::folding
