/// Cross-module property tests: invariants that must hold for *any* input,
/// checked on simulated runs and randomized synthetic data.

#include <gtest/gtest.h>

#include <cmath>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/cluster/dbscan.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/trace/io.hpp"
#include "test_util.hpp"

namespace unveil {
namespace {

class PerApp : public ::testing::TestWithParam<std::string> {
 protected:
  static const sim::RunResult& run(const std::string& app) {
    static std::map<std::string, sim::RunResult> cache;
    auto it = cache.find(app);
    if (it == cache.end()) {
      sim::apps::AppParams p;
      p.ranks = 4;
      p.iterations = 40;
      p.seed = 31;
      it = cache.emplace(app, analysis::runMeasured(
                                  app, p, sim::MeasurementConfig::folding()))
               .first;
    }
    return it->second;
  }
};

TEST_P(PerApp, FoldedRateConservesMass) {
  // The normalized instantaneous rate must integrate to ~1 over [0,1]:
  // folding reconstructs a *distribution* of the phase's counts over its
  // lifetime. Smoothing and clamping may only nibble at the edges.
  const auto& r = run(GetParam());
  const auto result = analysis::analyze(r.trace);
  std::size_t checked = 0;
  for (const auto& c : result.clusters) {
    for (const auto& [counter, curve] : c.rates) {
      const double mass = support::trapezoid(curve.t, curve.normRate);
      EXPECT_NEAR(mass, 1.0, 0.05)
          << GetParam() << " cluster " << c.clusterId << " counter "
          << counters::counterName(counter);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(PerApp, EventsMatchGroundTruth) {
  // Every ground-truth burst has exactly one begin and one end probe with
  // matching timestamps.
  const auto& r = run(GetParam());
  std::size_t begins = 0, ends = 0;
  for (const auto& e : r.trace.events()) {
    begins += (e.kind == trace::EventKind::PhaseBegin) ? 1 : 0;
    ends += (e.kind == trace::EventKind::PhaseEnd) ? 1 : 0;
  }
  EXPECT_EQ(begins, r.truth.bursts.size());
  EXPECT_EQ(ends, r.truth.bursts.size());
}

TEST_P(PerApp, ComputeTimeBoundedByRuntime) {
  const auto& r = run(GetParam());
  std::map<trace::Rank, double> computePerRank;
  for (const auto& s : r.trace.states())
    if (s.state == trace::State::Compute)
      computePerRank[s.rank] += static_cast<double>(s.end - s.begin);
  for (const auto& [rank, compute] : computePerRank) {
    (void)rank;
    EXPECT_LE(compute, static_cast<double>(r.totalRuntimeNs) * (1.0 + 1e-9));
    EXPECT_GT(compute, 0.0);
  }
}

TEST_P(PerApp, AnalysisIsDeterministic) {
  const auto& r = run(GetParam());
  const auto a = analysis::analyze(r.trace);
  const auto b = analysis::analyze(r.trace);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.period.period, b.period.period);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    ASSERT_EQ(a.clusters[i].rates.size(), b.clusters[i].rates.size());
    for (const auto& [counter, curve] : a.clusters[i].rates) {
      const auto& other = b.clusters[i].rates.at(counter);
      EXPECT_EQ(curve.normRate, other.normRate);
    }
  }
}

TEST_P(PerApp, TraceSerializationPreservesAnalysis) {
  // analyze(read(write(trace))) == analyze(trace): serialization is
  // analysis-lossless.
  const auto& r = run(GetParam());
  std::stringstream ss;
  trace::write(r.trace, ss);
  const auto back = trace::read(ss);
  const auto a = analysis::analyze(r.trace);
  const auto b = analysis::analyze(back);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.period.period, b.period.period);
}

INSTANTIATE_TEST_SUITE_P(Apps, PerApp,
                         ::testing::Values("wavesim", "nbsolver", "particlemesh",
                                           "amrflow"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

class DbscanScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(DbscanScaleInvariance, UniformScalingWithEpsScalesLabelsUnchanged) {
  support::Rng rng(7, "scale");
  cluster::FeatureMatrix m(300, 2);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double cx = (i % 3) * 5.0;
    m.at(i, 0) = rng.normal(cx, 0.2);
    m.at(i, 1) = rng.normal(-cx, 0.2);
  }
  const double scale = GetParam();
  cluster::FeatureMatrix scaled(m.rows(), 2);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    scaled.at(i, 0) = m.at(i, 0) * scale;
    scaled.at(i, 1) = m.at(i, 1) * scale;
  }
  cluster::DbscanParams p;
  p.eps = 0.8;
  p.minPts = 5;
  cluster::DbscanParams ps = p;
  ps.eps = p.eps * scale;
  const auto a = cluster::dbscan(m, p);
  const auto b = cluster::dbscan(scaled, ps);
  EXPECT_EQ(a.labels, b.labels);
}

INSTANTIATE_TEST_SUITE_P(Scales, DbscanScaleInvariance,
                         ::testing::Values(0.1, 2.0, 37.5));

class RandomTraceRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraceRoundTrip, FuzzedTracesSurviveSerialization) {
  support::Rng rng(GetParam(), "fuzz");
  const auto ranks = static_cast<trace::Rank>(rng.uniformInt(1, 5));
  trace::Trace t("fuzz", ranks);
  for (trace::Rank r = 0; r < ranks; ++r) {
    counters::CounterSet cum;
    trace::TimeNs now = static_cast<trace::TimeNs>(rng.uniformInt(0, 1000));
    const int records = static_cast<int>(rng.uniformInt(5, 60));
    for (int i = 0; i < records; ++i) {
      now += static_cast<trace::TimeNs>(rng.uniformInt(1, 100000));
      for (counters::CounterId id : counters::kAllCounters)
        cum[id] += static_cast<std::uint64_t>(rng.uniformInt(0, 1000000));
      if (rng.bernoulli(0.5)) {
        trace::Sample s;
        s.rank = r;
        s.time = now;
        s.counters = cum;
        t.addSample(s);
      } else {
        trace::Event e;
        e.rank = r;
        e.time = now;
        e.kind = static_cast<trace::EventKind>(rng.uniformInt(0, 3));
        e.value = static_cast<std::uint32_t>(rng.uniformInt(0, 5));
        e.counters = cum;
        t.addEvent(e);
      }
    }
  }
  t.finalize();
  std::stringstream ss;
  trace::write(t, ss);
  const auto back = trace::read(ss);
  EXPECT_EQ(back.stats().totalRecords, t.stats().totalRecords);
  EXPECT_EQ(back.durationNs(), t.durationNs());
  ASSERT_EQ(back.events().size(), t.events().size());
  for (std::size_t i = 0; i < t.events().size(); ++i)
    EXPECT_EQ(back.events()[i].counters, t.events()[i].counters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace unveil
