/// Tests for DBSCAN: blob recovery, noise handling, label ordering, the
/// grid index versus a brute-force reference (property test), and eps
/// estimation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/eps_grid.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::cluster {
namespace {

/// `blobs` tight Gaussian blobs with `per` points each, far apart.
FeatureMatrix makeBlobs(std::size_t blobs, std::size_t per, double sigma = 0.05,
                        std::uint64_t seed = 1) {
  support::Rng rng(seed, "blobs");
  FeatureMatrix m(blobs * per, 2);
  for (std::size_t b = 0; b < blobs; ++b) {
    for (std::size_t i = 0; i < per; ++i) {
      const std::size_t row = b * per + i;
      m.at(row, 0) = rng.normal(static_cast<double>(b) * 5.0, sigma);
      m.at(row, 1) = rng.normal(static_cast<double>(b) * -3.0, sigma);
    }
  }
  return m;
}

TEST(DbscanParams, Validation) {
  DbscanParams p;
  p.eps = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = DbscanParams{};
  p.minPts = 0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Dbscan, EmptyInput) {
  const FeatureMatrix m(0, 2);
  const auto c = dbscan(m, DbscanParams{});
  EXPECT_EQ(c.numClusters, 0u);
  EXPECT_TRUE(c.labels.empty());
}

TEST(Dbscan, RecoversBlobs) {
  const auto m = makeBlobs(3, 100);
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 5;
  const auto c = dbscan(m, p);
  EXPECT_EQ(c.numClusters, 3u);
  EXPECT_EQ(c.noiseCount(), 0u);
  // All points of one blob share a label.
  for (std::size_t b = 0; b < 3; ++b) {
    const int label = c.labels[b * 100];
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(c.labels[b * 100 + i], label);
  }
}

TEST(Dbscan, LabelsOrderedBySize) {
  // Blob sizes 150, 100, 50 -> labels 0, 1, 2 in that order.
  support::Rng rng(3, "sizes");
  const std::size_t sizes[] = {50, 150, 100};
  std::size_t total = 300;
  FeatureMatrix m(total, 2);
  std::size_t row = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < sizes[b]; ++i) {
      m.at(row, 0) = rng.normal(static_cast<double>(b) * 10.0, 0.05);
      m.at(row, 1) = rng.normal(0.0, 0.05);
      ++row;
    }
  }
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 5;
  const auto c = dbscan(m, p);
  ASSERT_EQ(c.numClusters, 3u);
  EXPECT_EQ(c.clusterSize(0), 150u);
  EXPECT_EQ(c.clusterSize(1), 100u);
  EXPECT_EQ(c.clusterSize(2), 50u);
}

TEST(Dbscan, IsolatedPointsAreNoise) {
  auto m = makeBlobs(1, 50);
  // Append 3 far-away isolated points.
  FeatureMatrix withNoise(53, 2);
  for (std::size_t i = 0; i < 50; ++i) {
    withNoise.at(i, 0) = m.at(i, 0);
    withNoise.at(i, 1) = m.at(i, 1);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    withNoise.at(50 + i, 0) = 100.0 + 10.0 * static_cast<double>(i);
    withNoise.at(50 + i, 1) = -50.0;
  }
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 5;
  const auto c = dbscan(withNoise, p);
  EXPECT_EQ(c.numClusters, 1u);
  EXPECT_EQ(c.noiseCount(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(c.labels[50 + i], kNoiseLabel);
}

TEST(Dbscan, MembersReturnsIndices) {
  const auto m = makeBlobs(2, 20);
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 3;
  const auto c = dbscan(m, p);
  const auto m0 = c.members(0);
  const auto m1 = c.members(1);
  EXPECT_EQ(m0.size() + m1.size(), 40u);
  for (std::size_t i : m0) EXPECT_EQ(c.labels[i], 0);
}

/// Brute-force DBSCAN reference for the property test.
Clustering bruteDbscan(const FeatureMatrix& m, const DbscanParams& params) {
  const std::size_t n = m.rows();
  const double eps2 = params.eps * params.eps;
  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < m.dims(); ++k) {
        const double d = m.at(i, k) - m.at(j, k);
        d2 += d * d;
      }
      if (d2 <= eps2) out.push_back(j);
    }
    return out;
  };
  std::vector<int> label(n, -2);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != -2) continue;
    auto nb = neighbors(i);
    if (nb.size() < params.minPts) {
      label[i] = kNoiseLabel;
      continue;
    }
    const int cl = next++;
    label[i] = cl;
    std::vector<std::size_t> queue(nb.begin(), nb.end());
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t j = queue[qi];
      if (label[j] == kNoiseLabel) label[j] = cl;
      if (label[j] != -2) continue;
      label[j] = cl;
      auto nb2 = neighbors(j);
      if (nb2.size() >= params.minPts)
        queue.insert(queue.end(), nb2.begin(), nb2.end());
    }
  }
  Clustering c;
  c.labels = std::move(label);
  c.numClusters = static_cast<std::size_t>(next);
  return c;
}

class DbscanVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbscanVsBrute, SamePartition) {
  // Random point cloud; grid-accelerated labels must induce the same
  // partition as the O(n^2) reference (up to label renaming).
  support::Rng rng(GetParam(), "cloud");
  FeatureMatrix m(220, 2);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    m.at(i, 0) = rng.uniform(0.0, 4.0);
    m.at(i, 1) = rng.uniform(0.0, 4.0);
  }
  DbscanParams p;
  p.eps = 0.35;
  p.minPts = 4;
  const auto fast = dbscan(m, p);
  const auto slow = bruteDbscan(m, p);
  ASSERT_EQ(fast.labels.size(), slow.labels.size());
  EXPECT_EQ(fast.numClusters, slow.numClusters);
  // Noise sets identical; clusters identical up to renaming.
  std::map<int, int> mapping;
  for (std::size_t i = 0; i < fast.labels.size(); ++i) {
    if (slow.labels[i] == kNoiseLabel) {
      // Border points reachable from two clusters may legitimately be
      // claimed by either cluster, but noise must agree exactly.
      EXPECT_EQ(fast.labels[i], kNoiseLabel) << "point " << i;
      continue;
    }
    EXPECT_NE(fast.labels[i], kNoiseLabel) << "point " << i;
    auto [it, inserted] = mapping.emplace(slow.labels[i], fast.labels[i]);
    if (!inserted) {
      EXPECT_EQ(it->second, fast.labels[i]) << "point " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanVsBrute,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Clustering, BucketsMatchMembers) {
  const auto m = makeBlobs(3, 40);
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 3;
  const auto c = dbscan(m, p);
  ASSERT_EQ(c.numClusters, 3u);
  const auto buckets = c.buckets();
  ASSERT_EQ(buckets.size(), c.numClusters);
  for (std::size_t cl = 0; cl < c.numClusters; ++cl)
    EXPECT_EQ(buckets[cl], c.members(static_cast<int>(cl))) << "cluster " << cl;
}

TEST(EpsGrid, KthNearestMatchesSortedBrute) {
  support::Rng rng(21, "knn");
  FeatureMatrix m(150, 3);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t d = 0; d < m.dims(); ++d) m.at(i, d) = rng.uniform(0.0, 3.0);
  for (std::size_t k : {0u, 3u, 9u}) {
    const EpsGrid grid(m, EpsGrid::knnCellSize(m, k + 1));
    ASSERT_TRUE(grid.valid());
    for (std::size_t i = 0; i < m.rows(); i += 17) {
      std::vector<double> d2;
      for (std::size_t j = 0; j < m.rows(); ++j) {
        if (j == i) continue;
        double s = 0.0;
        for (std::size_t d = 0; d < m.dims(); ++d) {
          const double diff = m.at(i, d) - m.at(j, d);
          s += diff * diff;
        }
        d2.push_back(s);
      }
      std::sort(d2.begin(), d2.end());
      EXPECT_DOUBLE_EQ(grid.kthNearestDist(i, k), std::sqrt(d2[k]))
          << "row " << i << " k " << k;
    }
  }
}

/// Reference implementation of estimateEps: the historical brute-force scan
/// (same subsample stride, k-th selection and quantile), for checking that
/// the grid-accelerated parallel version is exact, not just close.
double bruteEstimateEps(const FeatureMatrix& m, std::size_t minPts,
                        double quantile) {
  const std::size_t n = m.rows();
  const std::size_t stride = std::max<std::size_t>(1, n / 2000);
  const std::size_t kth = std::min(minPts, n - 1) - 1;
  std::vector<double> kDist;
  for (std::size_t i = 0; i < n; i += stride) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      for (std::size_t k = 0; k < m.dims(); ++k) {
        const double d = m.at(i, k) - m.at(j, k);
        d2 += d * d;
      }
      dists.push_back(d2);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(kth),
                     dists.end());
    kDist.push_back(std::sqrt(dists[kth]));
  }
  return support::quantile(kDist, quantile);
}

class EstimateEpsVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimateEpsVsBrute, Exact) {
  support::Rng rng(GetParam(), "epscloud");
  FeatureMatrix m(260, 2);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    m.at(i, 0) = rng.uniform(0.0, 4.0);
    m.at(i, 1) = rng.uniform(0.0, 4.0);
  }
  for (std::size_t minPts : {4u, 8u}) {
    EXPECT_DOUBLE_EQ(estimateEps(m, minPts), bruteEstimateEps(m, minPts, 0.90));
    EXPECT_DOUBLE_EQ(estimateEps(m, minPts, 0.94),
                     bruteEstimateEps(m, minPts, 0.94));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateEpsVsBrute,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(EstimateEps, DegenerateIdenticalPointsFallBackToBrute) {
  // All points identical: the grid cannot size cells (knnCellSize == 0), so
  // the brute path runs; all k-dists are 0 and so is the estimate.
  const FeatureMatrix m(30, 2);  // zero-initialized rows
  EXPECT_DOUBLE_EQ(estimateEps(m, 5), 0.0);
  EXPECT_DOUBLE_EQ(estimateEps(m, 5), bruteEstimateEps(m, 5, 0.90));
}

TEST(EstimateEps, SeparatesBlobScales) {
  const auto tight = makeBlobs(2, 100, 0.02);
  const auto loose = makeBlobs(2, 100, 0.4);
  const double epsTight = estimateEps(tight, 5);
  const double epsLoose = estimateEps(loose, 5);
  EXPECT_LT(epsTight, epsLoose);
  EXPECT_GT(epsTight, 0.0);
}

TEST(EstimateEps, Validation) {
  const FeatureMatrix tiny(1, 2);
  EXPECT_THROW((void)estimateEps(tiny, 5), AnalysisError);
  const auto m = makeBlobs(1, 10);
  EXPECT_THROW((void)estimateEps(m, 0), ConfigError);
}

}  // namespace
}  // namespace unveil::cluster
