/// Tests for DBSCAN: blob recovery, noise handling, label ordering, the
/// grid index versus a brute-force reference (property test), and eps
/// estimation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/eps_grid.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::cluster {
namespace {

/// `blobs` tight Gaussian blobs with `per` points each, far apart.
FeatureMatrix makeBlobs(std::size_t blobs, std::size_t per, double sigma = 0.05,
                        std::uint64_t seed = 1) {
  support::Rng rng(seed, "blobs");
  FeatureMatrix m(blobs * per, 2);
  for (std::size_t b = 0; b < blobs; ++b) {
    for (std::size_t i = 0; i < per; ++i) {
      const std::size_t row = b * per + i;
      m.at(row, 0) = rng.normal(static_cast<double>(b) * 5.0, sigma);
      m.at(row, 1) = rng.normal(static_cast<double>(b) * -3.0, sigma);
    }
  }
  return m;
}

TEST(DbscanParams, Validation) {
  DbscanParams p;
  p.eps = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = DbscanParams{};
  p.minPts = 0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Dbscan, EmptyInput) {
  const FeatureMatrix m(0, 2);
  const auto c = dbscan(m, DbscanParams{});
  EXPECT_EQ(c.numClusters, 0u);
  EXPECT_TRUE(c.labels.empty());
}

TEST(Dbscan, RecoversBlobs) {
  const auto m = makeBlobs(3, 100);
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 5;
  const auto c = dbscan(m, p);
  EXPECT_EQ(c.numClusters, 3u);
  EXPECT_EQ(c.noiseCount(), 0u);
  // All points of one blob share a label.
  for (std::size_t b = 0; b < 3; ++b) {
    const int label = c.labels[b * 100];
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(c.labels[b * 100 + i], label);
  }
}

TEST(Dbscan, LabelsOrderedBySize) {
  // Blob sizes 150, 100, 50 -> labels 0, 1, 2 in that order.
  support::Rng rng(3, "sizes");
  const std::size_t sizes[] = {50, 150, 100};
  std::size_t total = 300;
  FeatureMatrix m(total, 2);
  std::size_t row = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < sizes[b]; ++i) {
      m.at(row, 0) = rng.normal(static_cast<double>(b) * 10.0, 0.05);
      m.at(row, 1) = rng.normal(0.0, 0.05);
      ++row;
    }
  }
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 5;
  const auto c = dbscan(m, p);
  ASSERT_EQ(c.numClusters, 3u);
  EXPECT_EQ(c.clusterSize(0), 150u);
  EXPECT_EQ(c.clusterSize(1), 100u);
  EXPECT_EQ(c.clusterSize(2), 50u);
}

TEST(Dbscan, IsolatedPointsAreNoise) {
  auto m = makeBlobs(1, 50);
  // Append 3 far-away isolated points.
  FeatureMatrix withNoise(53, 2);
  for (std::size_t i = 0; i < 50; ++i) {
    withNoise.at(i, 0) = m.at(i, 0);
    withNoise.at(i, 1) = m.at(i, 1);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    withNoise.at(50 + i, 0) = 100.0 + 10.0 * static_cast<double>(i);
    withNoise.at(50 + i, 1) = -50.0;
  }
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 5;
  const auto c = dbscan(withNoise, p);
  EXPECT_EQ(c.numClusters, 1u);
  EXPECT_EQ(c.noiseCount(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(c.labels[50 + i], kNoiseLabel);
}

TEST(Dbscan, MembersReturnsIndices) {
  const auto m = makeBlobs(2, 20);
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 3;
  const auto c = dbscan(m, p);
  const auto m0 = c.members(0);
  const auto m1 = c.members(1);
  EXPECT_EQ(m0.size() + m1.size(), 40u);
  for (std::size_t i : m0) EXPECT_EQ(c.labels[i], 0);
}

/// Brute-force reference implementing dbscan()'s documented deterministic
/// semantics directly from the definition: a point is core when its closed
/// eps-neighborhood holds >= minPts points; clusters are the connected
/// components of core points in the eps graph; a non-core point joins the
/// cluster of its nearest core within eps (ties: lowest core row index) or
/// is noise; cluster ids are ordered by descending member count, ties by
/// lowest core row.
Clustering bruteDbscan(const FeatureMatrix& m, const DbscanParams& params) {
  const std::size_t n = m.rows();
  const double eps2 = params.eps * params.eps;
  auto d2 = [&](std::size_t i, std::size_t j) {
    double s = 0.0;
    for (std::size_t k = 0; k < m.dims(); ++k) {
      const double d = m.at(i, k) - m.at(j, k);
      s += d * d;
    }
    return s;
  };
  std::vector<std::uint8_t> core(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (d2(i, j) <= eps2) ++count;
    core[i] = count >= params.minPts ? 1 : 0;
  }
  // Components of cores by repeated BFS in row order; the component of the
  // lowest core row gets id 0, matching the "discovered at its lowest core"
  // numbering the implementation reproduces via min-core-row.
  std::vector<int> comp(n, -1);
  std::vector<std::size_t> minCoreRow;
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i] || comp[i] != -1) continue;
    const int c = next++;
    minCoreRow.push_back(i);
    std::vector<std::size_t> queue{i};
    comp[i] = c;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t u = queue[qi];
      for (std::size_t v = 0; v < n; ++v) {
        if (!core[v] || comp[v] != -1 || d2(u, v) > eps2) continue;
        comp[v] = c;
        queue.push_back(v);
      }
    }
  }
  // Borders: nearest core within eps, ties to the lowest core row.
  std::vector<int> label(n, kNoiseLabel);
  for (std::size_t i = 0; i < n; ++i) {
    if (core[i]) {
      label[i] = comp[i];
      continue;
    }
    double best = eps2;
    std::size_t bestCore = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (!core[j]) continue;
      const double dd = d2(i, j);
      if (dd < best || (dd == best && j < bestCore && dd <= eps2)) {
        best = dd;
        bestCore = j;
      }
    }
    if (bestCore < n) label[i] = comp[bestCore];
  }
  // Renumber: size descending, ties by lowest core row.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(next), 0);
  for (int l : label)
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  std::vector<int> order(static_cast<std::size_t>(next));
  for (int c = 0; c < next; ++c) order[static_cast<std::size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto sa = sizes[static_cast<std::size_t>(a)];
    const auto sb = sizes[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return minCoreRow[static_cast<std::size_t>(a)] <
           minCoreRow[static_cast<std::size_t>(b)];
  });
  std::vector<int> remap(static_cast<std::size_t>(next));
  for (int newId = 0; newId < next; ++newId)
    remap[static_cast<std::size_t>(order[static_cast<std::size_t>(newId)])] = newId;
  for (auto& l : label)
    if (l >= 0) l = remap[static_cast<std::size_t>(l)];
  Clustering c;
  c.labels = std::move(label);
  c.numClusters = static_cast<std::size_t>(next);
  c.core = std::move(core);
  return c;
}

class DbscanVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbscanVsBrute, SameLabels) {
  // Random point cloud; the cell-based implementation must reproduce the
  // definitional O(n^2) reference EXACTLY — same labels, same core flags —
  // because its semantics (nearest-core borders, canonical numbering) are
  // order-independent, not merely equal up to renaming.
  support::Rng rng(GetParam(), "cloud");
  FeatureMatrix m(220, 2);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    m.at(i, 0) = rng.uniform(0.0, 4.0);
    m.at(i, 1) = rng.uniform(0.0, 4.0);
  }
  DbscanParams p;
  p.eps = 0.35;
  p.minPts = 4;
  const auto fast = dbscan(m, p);
  const auto slow = bruteDbscan(m, p);
  ASSERT_EQ(fast.labels.size(), slow.labels.size());
  EXPECT_EQ(fast.numClusters, slow.numClusters);
  EXPECT_EQ(fast.core, slow.core);
  EXPECT_EQ(fast.labels, slow.labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanVsBrute,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Clustering, BucketsMatchMembers) {
  const auto m = makeBlobs(3, 40);
  DbscanParams p;
  p.eps = 0.5;
  p.minPts = 3;
  const auto c = dbscan(m, p);
  ASSERT_EQ(c.numClusters, 3u);
  const auto buckets = c.buckets();
  ASSERT_EQ(buckets.size(), c.numClusters);
  for (std::size_t cl = 0; cl < c.numClusters; ++cl)
    EXPECT_EQ(buckets[cl], c.members(static_cast<int>(cl))) << "cluster " << cl;
}

TEST(EpsGrid, KthNearestMatchesSortedBrute) {
  support::Rng rng(21, "knn");
  FeatureMatrix m(150, 3);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t d = 0; d < m.dims(); ++d) m.at(i, d) = rng.uniform(0.0, 3.0);
  for (std::size_t k : {0u, 3u, 9u}) {
    const EpsGrid grid(m, EpsGrid::knnCellSize(m, k + 1));
    ASSERT_TRUE(grid.valid());
    for (std::size_t i = 0; i < m.rows(); i += 17) {
      std::vector<double> d2;
      for (std::size_t j = 0; j < m.rows(); ++j) {
        if (j == i) continue;
        double s = 0.0;
        for (std::size_t d = 0; d < m.dims(); ++d) {
          const double diff = m.at(i, d) - m.at(j, d);
          s += diff * diff;
        }
        d2.push_back(s);
      }
      std::sort(d2.begin(), d2.end());
      EXPECT_DOUBLE_EQ(grid.kthNearestDist(i, k), std::sqrt(d2[k]))
          << "row " << i << " k " << k;
    }
  }
}

/// Reference implementation of estimateEps: the historical brute-force scan
/// (same subsample stride, k-th selection and quantile), for checking that
/// the grid-accelerated parallel version is exact, not just close.
double bruteEstimateEps(const FeatureMatrix& m, std::size_t minPts,
                        double quantile) {
  const std::size_t n = m.rows();
  const std::size_t stride = std::max<std::size_t>(1, n / 2000);
  const std::size_t kth = std::min(minPts, n - 1) - 1;
  std::vector<double> kDist;
  for (std::size_t i = 0; i < n; i += stride) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      for (std::size_t k = 0; k < m.dims(); ++k) {
        const double d = m.at(i, k) - m.at(j, k);
        d2 += d * d;
      }
      dists.push_back(d2);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(kth),
                     dists.end());
    kDist.push_back(std::sqrt(dists[kth]));
  }
  return support::quantile(kDist, quantile);
}

class EstimateEpsVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimateEpsVsBrute, Exact) {
  support::Rng rng(GetParam(), "epscloud");
  FeatureMatrix m(260, 2);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    m.at(i, 0) = rng.uniform(0.0, 4.0);
    m.at(i, 1) = rng.uniform(0.0, 4.0);
  }
  for (std::size_t minPts : {4u, 8u}) {
    EXPECT_DOUBLE_EQ(estimateEps(m, minPts), bruteEstimateEps(m, minPts, 0.90));
    EXPECT_DOUBLE_EQ(estimateEps(m, minPts, 0.94),
                     bruteEstimateEps(m, minPts, 0.94));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateEpsVsBrute,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(EstimateEps, DegenerateIdenticalPointsFallBackToBrute) {
  // All points identical: the grid cannot size cells (knnCellSize == 0), so
  // the brute path runs; all k-dists are 0 and so is the estimate.
  const FeatureMatrix m(30, 2);  // zero-initialized rows
  EXPECT_DOUBLE_EQ(estimateEps(m, 5), 0.0);
  EXPECT_DOUBLE_EQ(estimateEps(m, 5), bruteEstimateEps(m, 5, 0.90));
}

TEST(EstimateEps, SeparatesBlobScales) {
  const auto tight = makeBlobs(2, 100, 0.02);
  const auto loose = makeBlobs(2, 100, 0.4);
  const double epsTight = estimateEps(tight, 5);
  const double epsLoose = estimateEps(loose, 5);
  EXPECT_LT(epsTight, epsLoose);
  EXPECT_GT(epsTight, 0.0);
}

TEST(EstimateEps, Validation) {
  const FeatureMatrix tiny(1, 2);
  EXPECT_THROW((void)estimateEps(tiny, 5), AnalysisError);
  const auto m = makeBlobs(1, 10);
  EXPECT_THROW((void)estimateEps(m, 0), ConfigError);
}

}  // namespace
}  // namespace unveil::cluster
