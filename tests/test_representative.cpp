/// Tests for representative-region selection.

#include <gtest/gtest.h>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/representative.hpp"
#include "unveil/support/error.hpp"
#include "unveil/trace/filter.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

TEST(RepresentativeParams, Validation) {
  RepresentativeParams p;
  p.iterations = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RepresentativeParams{};
  p.skipFraction = 1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Representative, FindsWindowOnSimulatedRun) {
  const auto& run = testutil::smallWavesimRun();
  const auto result = analyze(run.trace);
  ASSERT_EQ(result.period.period, 3u);
  const auto window = representativeWindow(result);
  ASSERT_TRUE(window.has_value());
  EXPECT_LT(window->begin, window->end);
  EXPECT_EQ(window->iterationsCovered, 10u);
  // The window skips warm-up and ends before the run does.
  EXPECT_GT(window->begin, 0u);
  EXPECT_LE(window->end, run.trace.durationNs());
  // Expected length ~ 10 iterations; iteration ~ runtime/40.
  const double iter = static_cast<double>(run.totalRuntimeNs) / 40.0;
  const double len = static_cast<double>(window->end - window->begin);
  EXPECT_NEAR(len, 10.0 * iter, 2.0 * iter);
}

TEST(Representative, SliceIsReanalyzable) {
  const auto& run = testutil::smallWavesimRun();
  const auto result = analyze(run.trace);
  const auto window = representativeWindow(result);
  ASSERT_TRUE(window.has_value());
  const auto cut = trace::sliceTime(run.trace, window->begin, window->end);
  PipelineConfig config;
  config.dbscan.minPts = 5;       // far fewer bursts in the slice
  config.minClusterInstances = 5;
  const auto sliced = analyze(cut, config);
  // The slice preserves the structure: same period, same cluster count.
  EXPECT_EQ(sliced.period.period, result.period.period);
  EXPECT_EQ(sliced.clustering.numClusters, result.clustering.numClusters);
}

TEST(Representative, NoPeriodNoWindow) {
  PipelineResult result;  // empty: no period
  EXPECT_FALSE(representativeWindow(result).has_value());
}

TEST(Representative, TooFewIterationsNoWindow) {
  const auto& run = testutil::smallWavesimRun();
  const auto result = analyze(run.trace);
  RepresentativeParams p;
  p.iterations = 10'000;  // more than the run has
  EXPECT_FALSE(representativeWindow(result, p).has_value());
}

TEST(Representative, RespectsSkipFraction) {
  const auto& run = testutil::smallWavesimRun();
  const auto result = analyze(run.trace);
  RepresentativeParams early;
  early.skipFraction = 0.0;
  early.iterations = 5;
  RepresentativeParams late;
  late.skipFraction = 0.5;
  late.iterations = 5;
  const auto a = representativeWindow(result, early);
  const auto b = representativeWindow(result, late);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_LT(a->begin, b->begin);
}

}  // namespace
}  // namespace unveil::analysis
