/// Equivalence tests for the single-pass multi-counter fold: foldClusterMulti
/// must reproduce per-counter foldCluster() bit-for-bit — including under
/// multiplexed counter masks, per-counter min-increment divergence, and
/// through the full analysis pipeline on the example applications.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/cluster/burst.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/folding/rate.hpp"
#include "unveil/support/error.hpp"
#include "test_util.hpp"

namespace unveil::folding {
namespace {

using counters::CounterId;

std::vector<std::size_t> allIndices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

trace::CounterMask maskOf(CounterId id) {
  return static_cast<trace::CounterMask>(1u << counters::counterIndex(id));
}

/// Exact (bit-identical) comparison of two folded clouds.
void expectIdenticalFolded(const FoldedCounter& got, const FoldedCounter& want) {
  EXPECT_EQ(got.counter, want.counter);
  EXPECT_EQ(got.instances, want.instances);
  EXPECT_EQ(got.instancesWithSamples, want.instancesWithSamples);
  EXPECT_EQ(got.meanDurationNs, want.meanDurationNs);
  EXPECT_EQ(got.meanTotal, want.meanTotal);
  ASSERT_EQ(got.points.size(), want.points.size());
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    EXPECT_EQ(got.points[i].t, want.points[i].t) << "point " << i;
    EXPECT_EQ(got.points[i].y, want.points[i].y) << "point " << i;
    EXPECT_EQ(got.points[i].burstIdx, want.points[i].burstIdx) << "point " << i;
    EXPECT_EQ(got.points[i].rank, want.points[i].rank) << "point " << i;
  }
}

/// Runs foldClusterMulti over \p set and checks every entry against the
/// corresponding single-counter foldCluster() call.
void expectMultiMatchesPerCounter(const trace::Trace& trace,
                                  std::span<const cluster::Burst> bursts,
                                  std::span<const std::size_t> members,
                                  std::span<const CounterId> set,
                                  const FoldOptions& options = {}) {
  const auto entries = foldClusterMulti(trace, bursts, members, set, options);
  ASSERT_EQ(entries.size(), set.size());
  for (std::size_t k = 0; k < set.size(); ++k) {
    EXPECT_EQ(entries[k].counter, set[k]);
    ASSERT_TRUE(entries[k].folded)
        << counters::counterName(set[k]) << ": " << entries[k].error;
    expectIdenticalFolded(*entries[k].folded,
                          foldCluster(trace, bursts, members, set[k], options));
  }
}

TEST(FoldMulti, MatchesPerCounterOnSynthetic) {
  testutil::SyntheticSpec spec;
  spec.bursts = 40;
  spec.samplesPerBurst = 7;
  spec.cdf = [](double t) { return t * t; };
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const auto members = allIndices(bursts.size());
  // The synthetic trace has heavy exact t ties across bursts (samples sit at
  // fixed fractions), so this also pins the shared-sort tie ordering.
  const std::array<CounterId, 2> set{CounterId::TotIns, CounterId::TotCyc};
  expectMultiMatchesPerCounter(trace, bursts, members, set);
}

TEST(FoldMulti, UnqualifiedCounterYieldsErrorEntryNotThrow) {
  testutil::SyntheticSpec spec;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const auto members = allIndices(bursts.size());
  // FP_OPS never increments in the synthetic trace: foldCluster throws, the
  // multi variant reports the same message and still folds the others.
  const std::array<CounterId, 3> set{CounterId::TotIns, CounterId::FpOps,
                                     CounterId::TotCyc};
  const auto entries = foldClusterMulti(trace, bursts, members, set);
  ASSERT_EQ(entries.size(), 3u);
  ASSERT_TRUE(entries[0].folded);
  ASSERT_TRUE(entries[2].folded);
  EXPECT_FALSE(entries[1].folded);
  EXPECT_EQ(entries[1].error,
            "foldCluster: no instance qualifies for counter " +
                std::string(counters::counterName(CounterId::FpOps)));
  expectIdenticalFolded(*entries[0].folded,
                        foldCluster(trace, bursts, members, CounterId::TotIns));
  expectIdenticalFolded(*entries[2].folded,
                        foldCluster(trace, bursts, members, CounterId::TotCyc));
}

/// A single-rank trace whose samples carry rotating multiplex masks: even
/// samples (globally) read only TOT_INS, odd only TOT_CYC. With an odd
/// per-burst sample count the rotation shifts phase every burst, so the two
/// counters' emission patterns differ everywhere.
trace::Trace makeMultiplexedTrace(std::size_t burstCount, std::size_t samplesPer) {
  trace::Trace t("mux", 1);
  counters::CounterSet cum;
  const trace::TimeNs burstNs = 1'000'000;
  trace::TimeNs now = 1000;
  std::size_t global = 0;
  for (std::size_t b = 0; b < burstCount; ++b) {
    trace::Event begin;
    begin.rank = 0;
    begin.time = now;
    begin.kind = trace::EventKind::PhaseBegin;
    begin.counters = cum;
    t.addEvent(begin);

    for (std::size_t s = 0; s < samplesPer; ++s) {
      const double frac = static_cast<double>(s + 1) /
                          static_cast<double>(samplesPer + 1);
      trace::Sample sample;
      sample.rank = 0;
      sample.time = now + static_cast<trace::TimeNs>(
                              frac * static_cast<double>(burstNs));
      sample.counters = cum;
      sample.counters[CounterId::TotIns] +=
          static_cast<std::uint64_t>(std::llround(1e6 * frac));
      sample.counters[CounterId::TotCyc] +=
          static_cast<std::uint64_t>(std::llround(1e6 * frac * frac));
      sample.validMask = (global % 2 == 0) ? maskOf(CounterId::TotIns)
                                           : maskOf(CounterId::TotCyc);
      ++global;
      t.addSample(sample);
    }

    now += burstNs;
    cum[CounterId::TotIns] += 1'000'000;
    cum[CounterId::TotCyc] += 1'000'000;
    trace::Event end = begin;
    end.kind = trace::EventKind::PhaseEnd;
    end.time = now;
    end.counters = cum;
    t.addEvent(end);
    now += 100'000;
  }
  t.setDurationNs(now + 1000);
  t.finalize();
  return t;
}

TEST(FoldMulti, MatchesPerCounterUnderMultiplexedMasks) {
  const auto trace = makeMultiplexedTrace(30, 7);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  ASSERT_EQ(bursts.size(), 30u);
  const auto members = allIndices(bursts.size());
  const std::array<CounterId, 2> set{CounterId::TotIns, CounterId::TotCyc};
  expectMultiMatchesPerCounter(trace, bursts, members, set);

  // Sanity: the rotation really splits the samples between the counters.
  const auto ins = foldCluster(trace, bursts, members, CounterId::TotIns);
  const auto cyc = foldCluster(trace, bursts, members, CounterId::TotCyc);
  EXPECT_EQ(ins.points.size() + cyc.points.size(), 30u * 7u);
  EXPECT_GT(ins.points.size(), 0u);
  EXPECT_GT(cyc.points.size(), 0u);
}

/// A trace where TOT_CYC increments only on even bursts and one burst is
/// half-length, so per-counter qualification diverges: min-increment skips
/// odd bursts for TOT_CYC only, min-duration skips the short burst for both.
trace::Trace makeDivergingTrace(std::size_t burstCount, std::size_t samplesPer) {
  trace::Trace t("diverge", 1);
  counters::CounterSet cum;
  trace::TimeNs now = 1000;
  for (std::size_t b = 0; b < burstCount; ++b) {
    const trace::TimeNs burstNs = (b == 1) ? 500'000 : 1'000'000;
    const bool cycActive = (b % 2 == 0);
    trace::Event begin;
    begin.rank = 0;
    begin.time = now;
    begin.kind = trace::EventKind::PhaseBegin;
    begin.counters = cum;
    t.addEvent(begin);

    for (std::size_t s = 0; s < samplesPer; ++s) {
      const double frac = static_cast<double>(s + 1) /
                          static_cast<double>(samplesPer + 1);
      trace::Sample sample;
      sample.rank = 0;
      sample.time = now + static_cast<trace::TimeNs>(
                              frac * static_cast<double>(burstNs));
      sample.counters = cum;
      sample.counters[CounterId::TotIns] +=
          static_cast<std::uint64_t>(std::llround(1e6 * frac));
      if (cycActive)
        sample.counters[CounterId::TotCyc] +=
            static_cast<std::uint64_t>(std::llround(1e6 * frac));
      t.addSample(sample);
    }

    now += burstNs;
    cum[CounterId::TotIns] += 1'000'000;
    if (cycActive) cum[CounterId::TotCyc] += 1'000'000;
    trace::Event end = begin;
    end.kind = trace::EventKind::PhaseEnd;
    end.time = now;
    end.counters = cum;
    t.addEvent(end);
    now += 100'000;
  }
  t.setDurationNs(now + 1000);
  t.finalize();
  return t;
}

TEST(FoldMulti, MatchesPerCounterWithDivergingQualification) {
  const auto trace = makeDivergingTrace(20, 5);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  ASSERT_EQ(bursts.size(), 20u);
  const auto members = allIndices(bursts.size());
  const std::array<CounterId, 2> set{CounterId::TotIns, CounterId::TotCyc};

  // Defaults: TOT_CYC skips the zero-increment odd bursts, TOT_INS keeps all.
  expectMultiMatchesPerCounter(trace, bursts, members, set);
  {
    const auto ins = foldCluster(trace, bursts, members, CounterId::TotIns);
    const auto cyc = foldCluster(trace, bursts, members, CounterId::TotCyc);
    EXPECT_EQ(ins.instances, 20u);
    EXPECT_EQ(cyc.instances, 10u);
  }

  // Raising minDurationNs drops the half-length burst for both counters.
  FoldOptions opts;
  opts.minDurationNs = 800'000;
  expectMultiMatchesPerCounter(trace, bursts, members, set, opts);
  EXPECT_EQ(foldCluster(trace, bursts, members, CounterId::TotIns, opts).instances,
            19u);

  // And with overhead compensation on top (t depends on samplesBefore).
  opts.perSampleOverheadNs = 2000.0;
  opts.probeOverheadNs = 500.0;
  expectMultiMatchesPerCounter(trace, bursts, members, set, opts);
}

TEST(FoldMulti, SubsetSelectionMatches) {
  testutil::SyntheticSpec spec;
  spec.bursts = 12;
  spec.samplesPerBurst = 4;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  const std::vector<std::size_t> subset = {1, 3, 4, 8, 11};
  const std::array<CounterId, 2> set{CounterId::TotCyc, CounterId::TotIns};
  expectMultiMatchesPerCounter(trace, bursts, subset, set);
}

TEST(FoldMulti, AnalyzeRatesByteIdenticalToPerCounterPath) {
  // The acceptance gate: the pipeline's multi-fold + shared-fit path must
  // produce byte-identical RateCurves to the old per-(cluster, counter)
  // reconstruction on the three example applications.
  for (const char* app : {"wavesim", "nbsolver", "particlemesh"}) {
    sim::apps::AppParams p;
    p.ranks = 4;
    p.iterations = 30;
    p.seed = 7;
    const auto run =
        analysis::runMeasured(app, p, sim::MeasurementConfig::folding());
    analysis::PipelineConfig config;
    const auto result = analysis::analyze(run.trace, config);

    bool comparedAny = false;
    for (const auto& report : result.clusters) {
      for (const auto& [counter, curve] : report.rates) {
        const auto ref = reconstructClusterRate(
            run.trace, result.bursts, report.memberIdx, counter,
            config.reconstruct);
        EXPECT_EQ(curve.t, ref.t) << app;
        EXPECT_EQ(curve.normRate, ref.normRate)
            << app << " cluster " << report.clusterId << " counter "
            << counters::counterName(counter);
        EXPECT_EQ(curve.physRate, ref.physRate)
            << app << " cluster " << report.clusterId << " counter "
            << counters::counterName(counter);
        EXPECT_EQ(curve.meanDurationNs, ref.meanDurationNs) << app;
        EXPECT_EQ(curve.meanTotal, ref.meanTotal) << app;
        EXPECT_EQ(curve.sourcePoints, ref.sourcePoints) << app;
        EXPECT_EQ(curve.sourceInstances, ref.sourceInstances) << app;
        comparedAny = true;
      }
    }
    EXPECT_TRUE(comparedAny) << app;
  }
}

}  // namespace
}  // namespace unveil::folding
