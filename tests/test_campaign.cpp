/// Tests for the N-trace scaling campaign (analysis/campaign.hpp): the
/// model fitter against series with known exponents, degenerate-input
/// rejection, and the end-to-end campaign on simulated scaling series.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "unveil/analysis/campaign.hpp"
#include "unveil/analysis/experiments.hpp"
#include "unveil/support/error.hpp"
#include "unveil/trace/binary_io.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

std::vector<double> apply(const std::vector<double>& p,
                          double (*f)(double)) {
  std::vector<double> y;
  for (const double v : p) y.push_back(f(v));
  return y;
}

const std::vector<double> kP = {4.0, 8.0, 16.0, 32.0};

TEST(FitScalingModel, RecoversLinear) {
  const auto y = apply(kP, +[](double p) { return 3.5 * p; });
  const auto m = fitScalingModel(kP, y, "linear");
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.a, 1.0, 0.05);
  EXPECT_EQ(m.b, 0);
  EXPECT_NEAR(m.c, 3.5, 0.2);
  EXPECT_GT(m.adjR2, 0.999);
}

TEST(FitScalingModel, RecoversQuadratic) {
  const auto y = apply(kP, +[](double p) { return 0.25 * p * p; });
  const auto m = fitScalingModel(kP, y, "quadratic");
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.a, 2.0, 0.05);
  EXPECT_EQ(m.b, 0);
}

TEST(FitScalingModel, RecoversPLogP) {
  const auto y = apply(kP, +[](double p) { return 2.0 * p * std::log2(p); });
  const auto m = fitScalingModel(kP, y, "plogp");
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.b, 1);
  EXPECT_NEAR(m.a, 1.0, 0.05);
  EXPECT_NEAR(m.c, 2.0, 0.2);
}

TEST(FitScalingModel, RecoversConstant) {
  const std::vector<double> y = {7.0, 7.0, 7.0, 7.0};
  const auto m = fitScalingModel(kP, y, "constant");
  ASSERT_TRUE(m.valid);
  EXPECT_DOUBLE_EQ(m.a, 0.0);
  EXPECT_EQ(m.b, 0);
  EXPECT_NEAR(m.c, 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.adjR2, 1.0);
}

TEST(FitScalingModel, NoisyConstantStaysConstant) {
  // 1% noise must not promote the model past the LOO guard into a bogus
  // power law on 4 points.
  const std::vector<double> y = {7.0, 7.05, 6.96, 7.02};
  const auto m = fitScalingModel(kP, y, "noisy");
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.eval(64.0), 7.0, 1.0);
  EXPECT_LT(std::abs(m.a), 0.15);
}

TEST(FitScalingModel, ProjectionAtUnseenScale) {
  const auto y = apply(kP, +[](double p) { return 10.0 * p; });
  const auto m = fitScalingModel(kP, y, "proj");
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.eval(256.0), 2560.0, 2560.0 * 0.02);
}

TEST(FitScalingModel, RejectsTooFewPoints) {
  const std::vector<double> p = {4.0, 8.0};
  const std::vector<double> y = {1.0, 2.0};
  try {
    (void)fitScalingModel(p, y, "duration of phase 3");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_NE(std::string(e.what()).find("duration of phase 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
  }
}

TEST(FitScalingModel, RejectsZeroVarianceScales) {
  const std::vector<double> p = {8.0, 8.0, 8.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  try {
    (void)fitScalingModel(p, y, "ctx");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_NE(std::string(e.what()).find("distinct"), std::string::npos);
  }
}

TEST(FitScalingModel, RejectsNegativeValues) {
  const std::vector<double> p = {4.0, 8.0, 16.0};
  const std::vector<double> y = {1.0, -2.0, 3.0};
  try {
    (void)fitScalingModel(p, y, "ctx");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos);
  }
}

TEST(FitScalingModel, RejectsNonPositiveScale) {
  const std::vector<double> p = {0.0, 8.0, 16.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)fitScalingModel(p, y, "ctx"), AnalysisError);
}

TEST(FitScalingModel, RejectsLengthMismatch) {
  const std::vector<double> p = {4.0, 8.0, 16.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW((void)fitScalingModel(p, y, "ctx"), AnalysisError);
}

TEST(FitScalingModel, NeverReturnsNaN) {
  // A wild but legal series still yields finite parameters.
  const std::vector<double> p = {2.0, 4.0, 8.0, 16.0};
  const std::vector<double> y = {1e-9, 1e3, 2.0, 1e9};
  const auto m = fitScalingModel(p, y, "wild");
  ASSERT_TRUE(m.valid);
  EXPECT_TRUE(std::isfinite(m.c));
  EXPECT_TRUE(std::isfinite(m.a));
  EXPECT_TRUE(std::isfinite(m.adjR2));
  EXPECT_TRUE(std::isfinite(m.eval(64.0)));
}

/// The simulated scaling series: wavesim phase durations scale linearly
/// with AppParams::scale, so traces at scale 1/4/16 annotated ranks=4/16/64
/// plant exponent 1.0 in every phase.
class CampaignFixture : public ::testing::Test {
 protected:
  static const std::vector<sim::RunResult>& runs() {
    static const std::vector<sim::RunResult> r = [] {
      std::vector<sim::RunResult> out;
      for (const double scale : {1.0, 4.0, 16.0}) {
        sim::apps::AppParams p;
        p.ranks = 4;
        p.iterations = 30;
        p.seed = 7;
        p.scale = scale;
        out.push_back(
            analysis::runMeasured("wavesim", p, sim::MeasurementConfig::folding()));
      }
      return out;
    }();
    return r;
  }

  static std::vector<CampaignMember> members() {
    const double params[] = {4.0, 16.0, 64.0};
    std::vector<CampaignMember> out;
    for (std::size_t i = 0; i < 3; ++i) {
      CampaignMember m;
      m.path = "trace" + std::to_string(i);
      m.param = params[i];
      m.ok = true;
      m.numRanks = 4;
      m.result = analyze(runs()[i].trace);
      out.push_back(std::move(m));
    }
    return out;
  }
};

TEST_F(CampaignFixture, RecoversPlantedExponentAndRanking) {
  const auto campaign = buildCampaign(members(), CampaignOptions{});
  EXPECT_TRUE(campaign.structureMatched);
  ASSERT_EQ(campaign.phases.size(), 3u);
  // Every wavesim phase scales linearly with the planted parameter.
  for (const auto& ph : campaign.phases) {
    ASSERT_TRUE(ph.durationNs.model.valid)
        << ph.durationNs.fitError;
    EXPECT_NEAR(ph.durationNs.model.a, 1.0, 0.15);
    EXPECT_EQ(ph.durationNs.model.b, 0);
  }
  // The stencil sweep dominates at every scale and therefore at the
  // projection point: it must be ranked first.
  EXPECT_GT(campaign.phases[0].sharePercent.back(), 50.0);
  ASSERT_FALSE(campaign.phases[0].projectedSharePercent.empty());
  EXPECT_GT(campaign.phases[0].projectedSharePercent.back(), 50.0);
}

TEST_F(CampaignFixture, ProjectsSharesAtUnseenScale) {
  CampaignOptions options;
  options.projectAt = {256.0};
  const auto campaign = buildCampaign(members(), options);
  double total = 0.0;
  for (const auto& ph : campaign.phases) {
    ASSERT_EQ(ph.projectedSharePercent.size(), 1u);
    EXPECT_GE(ph.projectedSharePercent[0], 0.0);
    total += ph.projectedSharePercent[0];
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST_F(CampaignFixture, DefaultProjectionIsFourTimesMax) {
  const auto campaign = buildCampaign(members(), CampaignOptions{});
  ASSERT_EQ(campaign.projectAt.size(), 1u);
  EXPECT_DOUBLE_EQ(campaign.projectAt[0], 256.0);
}

TEST_F(CampaignFixture, EvolutionDistancesPresent) {
  const auto campaign = buildCampaign(members(), CampaignOptions{});
  for (const auto& ph : campaign.phases) {
    // 3 members -> 2 consecutive distances per fully-present phase.
    EXPECT_EQ(ph.evolutionDistancePercent.size(), ph.sharePercent.size() - 1);
    for (const double d : ph.evolutionDistancePercent)
      if (d >= 0.0) EXPECT_LT(d, 50.0);
  }
}

TEST_F(CampaignFixture, DegradedMemberKeptWithWarning) {
  auto m = members();
  CampaignMember bad;
  bad.path = "broken.uvtb";
  bad.param = 32.0;
  bad.ok = false;
  bad.error = "trace error: all shards corrupt";
  m.push_back(bad);
  const auto campaign = buildCampaign(std::move(m), CampaignOptions{});
  ASSERT_EQ(campaign.members.size(), 4u);
  // Members are sorted by param; the degraded one sits at param=32.
  EXPECT_FALSE(campaign.members[2].ok);
  ASSERT_FALSE(campaign.warnings.empty());
  EXPECT_NE(campaign.warnings[0].find("broken.uvtb"), std::string::npos);
  // The surviving 3 points still model cleanly.
  ASSERT_EQ(campaign.phases.size(), 3u);
  EXPECT_NEAR(campaign.phases[0].durationNs.model.a, 1.0, 0.15);
}

TEST_F(CampaignFixture, TooFewSurvivorsThrows) {
  auto m = members();
  m[0].ok = false;
  m[0].error = "boom";
  EXPECT_THROW((void)buildCampaign(std::move(m), CampaignOptions{}), AnalysisError);
}

TEST_F(CampaignFixture, ReportAndJsonRender) {
  const auto campaign = buildCampaign(members(), CampaignOptions{});
  std::ostringstream report;
  printCampaignReport(campaign, report);
  EXPECT_NE(report.str().find("per-phase scaling models"), std::string::npos);
  EXPECT_NE(report.str().find("ranks^1.00"), std::string::npos);

  std::ostringstream json;
  writeCampaignJson(campaign, json);
  EXPECT_NE(json.str().find("\"param\": \"ranks\""), std::string::npos);
  EXPECT_NE(json.str().find("\"phases\""), std::string::npos);

  std::ostringstream extrap;
  writeExtrapText(campaign, extrap);
  EXPECT_NE(extrap.str().find("PARAMETER ranks"), std::string::npos);
  EXPECT_NE(extrap.str().find("POINTS 4 16 64"), std::string::npos);
  EXPECT_NE(extrap.str().find("REGION phase_pos"), std::string::npos);
  EXPECT_NE(extrap.str().find("DATA "), std::string::npos);
}

TEST_F(CampaignFixture, RunCampaignOverFilesWithCorruptMember) {
  const std::string dir = ::testing::TempDir();
  std::vector<CampaignMemberSpec> specs;
  const double params[] = {4.0, 16.0, 64.0};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string path =
        dir + "/campaign_t" + std::to_string(i) + "." + std::to_string(getpid()) +
        ".uvtb";
    trace::writeBinaryFile(runs()[i].trace, path);
    specs.push_back({path, params[i]});
  }
  // A fourth, truncated member: its shard table points past EOF.
  const std::string broken =
      dir + "/campaign_bad." + std::to_string(getpid()) + ".uvtb";
  {
    std::ifstream in(specs[1].path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream outF(broken, std::ios::binary);
    outF.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  specs.push_back({broken, 32.0});

  const auto campaign = runCampaign(specs, CampaignOptions{});
  ASSERT_EQ(campaign.members.size(), 4u);
  std::size_t okCount = 0;
  for (const auto& m : campaign.members) okCount += m.ok ? 1 : 0;
  EXPECT_EQ(okCount, 3u);
  ASSERT_FALSE(campaign.warnings.empty());
  EXPECT_NE(campaign.warnings[0].find(broken), std::string::npos);
  ASSERT_FALSE(campaign.phases.empty());
  EXPECT_NEAR(campaign.phases[0].durationNs.model.a, 1.0, 0.15);
  for (const auto& spec : specs) std::filesystem::remove(spec.path);
}

TEST(Campaign, RunCampaignRejectsTooFewSpecs) {
  EXPECT_THROW((void)runCampaign({{"a.uvtb", 1.0}, {"b.uvtb", 2.0}},
                                 CampaignOptions{}),
               ConfigError);
}

TEST(Campaign, NonRankParamRequiresAnnotations) {
  CampaignOptions options;
  options.paramName = "gridsize";
  try {
    (void)runCampaign({{"a.uvtb", 1.0}, {"b.uvtb", {}}, {"c.uvtb", 3.0}}, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("b.uvtb"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gridsize"), std::string::npos);
  }
}

}  // namespace
}  // namespace unveil::analysis
