/// Tests for code-region folding (callstack attribution).

#include <gtest/gtest.h>

#include "unveil/analysis/experiments.hpp"
#include "unveil/cluster/burst.hpp"
#include "unveil/counters/phase_model.hpp"
#include "unveil/folding/regions.hpp"
#include "unveil/support/error.hpp"
#include "test_util.hpp"

namespace unveil {
namespace {

TEST(PhaseRegions, DefaultSingleBody) {
  const counters::PhaseModel m("p");
  ASSERT_EQ(m.numRegions(), 1u);
  EXPECT_EQ(m.regions()[0].name, "body");
  EXPECT_EQ(m.regionAt(0.0), 0u);
  EXPECT_EQ(m.regionAt(1.0), 0u);
}

TEST(PhaseRegions, WidthsNormalizedAndTiling) {
  counters::PhaseModel m("p");
  m.setRegions({{"a", 1.0}, {"b", 3.0}});  // widths 0.25 / 0.75
  ASSERT_EQ(m.numRegions(), 2u);
  EXPECT_NEAR(m.regions()[0].end, 0.25, 1e-12);
  EXPECT_NEAR(m.regions()[1].begin, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(m.regions()[1].end, 1.0);
  EXPECT_EQ(m.regionAt(0.1), 0u);
  EXPECT_EQ(m.regionAt(0.25), 1u);
  EXPECT_EQ(m.regionAt(0.9), 1u);
}

TEST(PhaseRegions, Validation) {
  counters::PhaseModel m("p");
  EXPECT_THROW(m.setRegions({}), ConfigError);
  EXPECT_THROW(m.setRegions({{"a", 0.0}}), ConfigError);
  EXPECT_THROW(m.setRegions({{"a", 1.0}, {"b", -1.0}}), ConfigError);
}

TEST(RegionParams, Validation) {
  folding::RegionParams p;
  p.cells = 1;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(RegionProfile, NoAttributedSamplesRejected) {
  // Synthetic traces carry no region ids.
  testutil::SyntheticSpec spec;
  const auto trace = testutil::makeSyntheticTrace(spec);
  const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(trace);
  std::vector<std::size_t> all(bursts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  EXPECT_THROW((void)folding::regionProfile(trace, bursts, all), AnalysisError);
}

class RegionsOnSweep : public ::testing::Test {
 protected:
  static const sim::RunResult& run() {
    static const sim::RunResult r = [] {
      sim::apps::AppParams p;
      p.ranks = 4;
      p.iterations = 80;
      p.seed = 23;
      return analysis::runMeasured("wavesim", p, sim::MeasurementConfig::folding());
    }();
    return r;
  }

  static folding::RegionProfile sweepProfile() {
    const auto bursts = cluster::BurstExtraction{}.fromPhaseEvents(run().trace);
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < bursts.size(); ++i)
      if (bursts[i].truthPhase == 1) members.push_back(i);
    folding::RegionParams params;
    params.fold.perSampleOverheadNs = 2000.0;
    params.fold.probeOverheadNs = 100.0;
    return folding::regionProfile(run().trace, bursts, members, params);
  }
};

TEST_F(RegionsOnSweep, RecoversThreeRegionsInOrder) {
  const auto profile = sweepProfile();
  // stream_in / transition / overflow_tail as regions 1, 2, 3 (1-based).
  ASSERT_EQ(profile.segments.size(), 3u);
  EXPECT_EQ(profile.segments[0].regionId, 1u);
  EXPECT_EQ(profile.segments[1].regionId, 2u);
  EXPECT_EQ(profile.segments[2].regionId, 3u);
}

TEST_F(RegionsOnSweep, BoundariesNearGroundTruth) {
  const auto profile = sweepProfile();
  // True boundaries at work fractions 0.40 and 0.60. The folded boundary is
  // in *time*, which differs slightly because the instruction rate varies;
  // here duration fraction == work fraction by construction of the model.
  ASSERT_EQ(profile.segments.size(), 3u);
  EXPECT_NEAR(profile.segments[0].end, 0.40, 0.06);
  EXPECT_NEAR(profile.segments[1].end, 0.60, 0.06);
  EXPECT_DOUBLE_EQ(profile.segments[2].end, 1.0);
}

TEST_F(RegionsOnSweep, TimeSharesMatchWidths) {
  const auto profile = sweepProfile();
  EXPECT_NEAR(profile.timeShare.at(1), 0.40, 0.05);
  EXPECT_NEAR(profile.timeShare.at(2), 0.20, 0.05);
  EXPECT_NEAR(profile.timeShare.at(3), 0.40, 0.05);
  EXPECT_EQ(profile.attributedSamples, profile.totalSamples);
}

TEST_F(RegionsOnSweep, ConfidenceHighAwayFromBoundaries) {
  const auto profile = sweepProfile();
  for (const auto& seg : profile.segments) {
    EXPECT_GT(seg.confidence, 0.75) << "region " << seg.regionId;
    EXPECT_GT(seg.samples, 0u);
  }
}

TEST(RegionProfile, CallstackSamplingCanBeDisabled) {
  sim::apps::AppParams p;
  p.ranks = 2;
  p.iterations = 10;
  p.seed = 23;
  auto mc = sim::MeasurementConfig::folding();
  mc.sampling.sampleCallstacks = false;
  const auto run = analysis::runMeasured("wavesim", p, mc);
  for (const auto& s : run.trace.samples())
    EXPECT_EQ(s.regionId, trace::kNoRegion);
}

}  // namespace
}  // namespace unveil
