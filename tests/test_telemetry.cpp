/// Tests for the self-tracing layer: span nesting and cross-thread
/// recording, metrics accumulation, Chrome-trace JSON escaping, and the
/// pipeline's per-stage spans.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::telemetry {
namespace {

const SpanRecord* findSpan(const Snapshot& snap, std::string_view name) {
  for (const auto& s : snap.spans)
    if (s.name == name) return &s;
  return nullptr;
}

std::size_t countSpans(const Snapshot& snap, std::string_view name) {
  return static_cast<std::size_t>(
      std::count_if(snap.spans.begin(), snap.spans.end(),
                    [&](const SpanRecord& s) { return s.name == name; }));
}

TEST(Telemetry, InactiveByDefault) {
  ASSERT_EQ(Session::active(), nullptr);
  Span span("orphan");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.attr("key", "value");  // must be a no-op, not a crash
  count("orphan.counter", 7);
  gauge("orphan.gauge", 1.0);
  observe("orphan.histogram", 1.0);
}

TEST(Telemetry, SpanNestingBuildsTree) {
  Session session;
  session.activate();
  std::uint64_t outerId = 0;
  std::uint64_t innerId = 0;
  {
    Span outer("outer");
    outerId = outer.id();
    {
      Span inner("inner");
      innerId = inner.id();
    }
    Span sibling("sibling");
    EXPECT_EQ(sibling.id(), innerId + 1);
  }
  session.deactivate();

  const auto snap = session.snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  const auto* outer = findSpan(snap, "outer");
  const auto* inner = findSpan(snap, "inner");
  const auto* sibling = findSpan(snap, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->id, outerId);
  EXPECT_EQ(outer->parentId, 0u);
  EXPECT_EQ(inner->parentId, outerId);
  EXPECT_EQ(sibling->parentId, outerId);
  // Snapshot order is by start time: outer opened first.
  EXPECT_EQ(snap.spans.front().name, "outer");
  EXPECT_GE(inner->startNs, outer->startNs);
  EXPECT_GE(outer->durationNs, inner->durationNs);
}

TEST(Telemetry, SpanAttrs) {
  Session session;
  session.activate();
  {
    Span span("attrs");
    span.attr("text", "hello");
    span.attr("whole", 42);
    span.attr("negative", -3);
    span.attr("real", 0.5);
  }
  session.deactivate();
  const auto snap = session.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const std::map<std::string, std::string> attrs(snap.spans[0].attrs.begin(),
                                                 snap.spans[0].attrs.end());
  EXPECT_EQ(attrs.at("text"), "hello");
  EXPECT_EQ(attrs.at("whole"), "42");
  EXPECT_EQ(attrs.at("negative"), "-3");
  EXPECT_EQ(attrs.at("real"), "0.5");
}

TEST(Telemetry, WorkerThreadSpansReparentAndKeepThreadIds) {
  Session session;
  session.activate();
  constexpr std::size_t kWorkers = 4;
  {
    Span stage("stage");
    const std::uint64_t stageId = stage.id();
    std::vector<std::jthread> pool;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      pool.emplace_back([stageId] {
        const ScopedParent parent(stageId);
        Span span("stage.job");
        span.attr("inner", "yes");
        Span nested("stage.job.nested");
      });
    }
  }
  session.deactivate();

  const auto snap = session.snapshot();
  EXPECT_EQ(countSpans(snap, "stage.job"), kWorkers);
  EXPECT_EQ(countSpans(snap, "stage.job.nested"), kWorkers);
  const auto* stage = findSpan(snap, "stage");
  ASSERT_NE(stage, nullptr);

  std::vector<std::uint32_t> threadIds;
  std::map<std::uint64_t, const SpanRecord*> byId;
  for (const auto& s : snap.spans) byId[s.id] = &s;
  for (const auto& s : snap.spans) {
    if (s.name == "stage.job") {
      // Re-parented under the dispatching stage span, not a root.
      EXPECT_EQ(s.parentId, stage->id);
      threadIds.push_back(s.threadId);
    } else if (s.name == "stage.job.nested") {
      // Nesting within the worker still chains to the worker's own span.
      ASSERT_TRUE(byId.contains(s.parentId));
      EXPECT_EQ(byId[s.parentId]->name, "stage.job");
      EXPECT_EQ(byId[s.parentId]->threadId, s.threadId);
    }
  }
  // Each worker recorded under its own thread id, distinct from the main
  // thread's (the stage span).
  std::sort(threadIds.begin(), threadIds.end());
  EXPECT_EQ(std::unique(threadIds.begin(), threadIds.end()), threadIds.end());
  for (std::uint32_t tid : threadIds) EXPECT_NE(tid, stage->threadId);
}

TEST(Telemetry, MetricsAccumulate) {
  Session session;
  session.activate();
  count("work.items", 3);
  count("work.items", 4);
  gauge("knob", 1.5);
  gauge("knob", 2.5);  // last write wins
  observe("sizes", 10.0);
  observe("sizes", 20.0);
  observe("sizes", 60.0);

  // Concurrent increments must not lose updates.
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::jthread> pool;
  for (int w = 0; w < 4; ++w)
    pool.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) count("work.parallel");
    });
  pool.clear();
  session.deactivate();

  const auto snap = session.snapshot();
  EXPECT_EQ(snap.counters.at("work.items"), 7u);
  EXPECT_EQ(snap.counters.at("work.parallel"), 4 * kPerThread);
  EXPECT_DOUBLE_EQ(snap.gauges.at("knob"), 2.5);
  const auto& sizes = snap.histograms.at("sizes");
  EXPECT_EQ(sizes.count, 3u);
  EXPECT_DOUBLE_EQ(sizes.sum, 90.0);
  EXPECT_DOUBLE_EQ(sizes.min, 10.0);
  EXPECT_DOUBLE_EQ(sizes.max, 60.0);
  EXPECT_DOUBLE_EQ(sizes.mean(), 30.0);
}

TEST(Telemetry, EscapeJson) {
  EXPECT_EQ(escapeJson("plain"), "plain");
  EXPECT_EQ(escapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeJson("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(escapeJson("tab\there"), "tab\\there");
  EXPECT_EQ(escapeJson(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Telemetry, ChromeTraceEscapesSpecialCharacters) {
  Session session;
  session.activate();
  {
    Span span("quote\"back\\slash");
    span.attr("multi\nline", "value\twith\"stuff\\");
  }
  session.deactivate();

  std::ostringstream os;
  writeChromeTrace(session.snapshot(), os);
  const std::string json = os.str();
  // Raw specials must not survive unescaped: every quote is either
  // structural or preceded by a backslash, and no literal newline appears
  // inside the one-line event entries.
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("multi\\nline"), std::string::npos);
  EXPECT_NE(json.find("value\\twith\\\"stuff\\\\"), std::string::npos);
  EXPECT_EQ(json.find("quote\"back"), std::string::npos);
}

TEST(Telemetry, ChromeTraceShape) {
  Session session;
  session.activate();
  {
    Span parent("parent");
    Span child("child");
  }
  session.deactivate();
  std::ostringstream os;
  writeChromeTrace(session.snapshot(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"child\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\""), std::string::npos);
}

TEST(Telemetry, MetricsJsonShape) {
  Session session;
  session.activate();
  { Span span("one"); }
  count("c", 2);
  gauge("g", 3.5);
  observe("h", 1.0);
  session.deactivate();
  std::ostringstream os;
  writeMetricsJson(session.snapshot(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"one\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Telemetry, NewSessionStartsClean) {
  {
    Session first;
    first.activate();
    Span span("from-first");
    count("first.counter");
  }  // destroyed without deactivate: the next session must still work

  Session second;
  second.activate();
  { Span span("from-second"); }
  second.deactivate();
  const auto snap = second.snapshot();
  EXPECT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "from-second");
  EXPECT_FALSE(snap.counters.contains("first.counter"));
}

TEST(Telemetry, PipelineEmitsOneSpanPerStage) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 40;
  p.seed = 3;
  const auto run =
      analysis::runMeasured("wavesim", p, sim::MeasurementConfig::folding());

  Session session;
  session.activate();
  const auto result = analysis::analyze(run.trace);
  session.deactivate();
  const auto snap = session.snapshot();

  const char* stages[] = {"extract",   "features", "cluster", "structure",
                          "aggregate", "fold",     "fit"};
  EXPECT_EQ(countSpans(snap, "pipeline.analyze"), 1u);
  const auto* root = findSpan(snap, "pipeline.analyze");
  ASSERT_NE(root, nullptr);
  for (const char* stage : stages) {
    const std::string spanName = std::string("pipeline.") + stage;
    ASSERT_EQ(countSpans(snap, spanName), 1u) << spanName;
    EXPECT_EQ(findSpan(snap, spanName)->parentId, root->id) << spanName;
  }

  // PipelineResult::telemetry mirrors the stages, in execution order.
  ASSERT_EQ(result.telemetry.size(), std::size(stages));
  for (std::size_t i = 0; i < std::size(stages); ++i) {
    EXPECT_EQ(result.telemetry[i].name, stages[i]);
    EXPECT_GT(result.telemetry[i].wallNs, 0);
  }

  // Per-cluster fold and fit child spans under their stage spans.
  const auto* foldStage = findSpan(snap, "pipeline.fold");
  const auto* fitStage = findSpan(snap, "pipeline.fit");
  ASSERT_NE(foldStage, nullptr);
  ASSERT_NE(fitStage, nullptr);
  std::size_t foldChildren = 0;
  std::size_t fitChildren = 0;
  for (const auto& s : snap.spans) {
    if (s.name == "fold.cluster" && s.parentId == foldStage->id) ++foldChildren;
    if (s.name == "fit.reconstruct" && s.parentId == fitStage->id) ++fitChildren;
  }
  EXPECT_GT(foldChildren, 0u);
  EXPECT_GT(fitChildren, 0u);

  // Work counters reflect the run.
  EXPECT_EQ(snap.counters.at("pipeline.bursts_extracted"), result.bursts.size());
  EXPECT_EQ(snap.counters.at("fold.clusters"), foldChildren);
  EXPECT_GT(snap.counters.at("cluster.neighbor_queries"), 0u);

  // Disabled path: no session -> no per-stage stats.
  const auto plain = analysis::analyze(run.trace);
  EXPECT_TRUE(plain.telemetry.empty());
}

}  // namespace
}  // namespace unveil::telemetry
