/// \file test_streaming.cpp
/// The streaming engine's three contracts, plus the serve daemon built on
/// top of it:
///  1. bit-identity — `analyze --stream` output is byte-identical to batch
///     `analyze` for any thread count, on healthy AND degraded traces;
///  2. bounded memory — a many-shard trace analyzes in O(largest shard)
///     peak RSS, not O(trace);
///  3. isolation — an I/O fault scoped to one streaming read (the daemon's
///     per-request injection) never leaks into the next read.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "test_util.hpp"
#include "unveil/analysis/streaming.hpp"
#include "unveil/cli/commands.hpp"
#include "unveil/cli/server.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/support/json.hpp"
#include "unveil/support/sampler.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"
#include "unveil/trace/shard_stream.hpp"

namespace unveil {
namespace {

std::string tempPath(const std::string& stem) {
  return ::testing::TempDir() + "/unveil_streaming_" + stem + "." +
         std::to_string(::getpid());
}

/// A finalized multi-rank trace with per-rank phase bursts and evenly
/// spaced samples — every rank is one self-contained UVTB2 shard.
trace::Trace makeManyShardTrace(trace::Rank ranks, std::size_t bursts,
                                std::size_t samplesPerBurst) {
  trace::Trace t("manyshard", ranks);
  constexpr trace::TimeNs kBurstNs = 1'000'000;
  constexpr trace::TimeNs kGapNs = 100'000;
  trace::TimeNs duration = 0;
  for (trace::Rank r = 0; r < ranks; ++r) {
    counters::CounterSet cum;
    trace::TimeNs now = 1000 + static_cast<trace::TimeNs>(r) * 13;
    // Per-rank, per-burst work variation keeps the feature space non-
    // degenerate without pushing bursts into separate clusters.
    const double insPerBurst = 2'000'000.0 * (1.0 + 0.001 * r);
    for (std::size_t b = 0; b < bursts; ++b) {
      trace::Event begin;
      begin.rank = r;
      begin.time = now;
      begin.kind = trace::EventKind::PhaseBegin;
      begin.value = 0;
      begin.counters = cum;
      t.addEvent(begin);

      for (std::size_t s = 0; s < samplesPerBurst; ++s) {
        const double frac = static_cast<double>(s + 1) /
                            static_cast<double>(samplesPerBurst + 1);
        trace::Sample sample;
        sample.rank = r;
        sample.time =
            now + static_cast<trace::TimeNs>(frac * static_cast<double>(kBurstNs));
        sample.counters = cum;
        sample.counters[counters::CounterId::TotIns] +=
            static_cast<std::uint64_t>(std::llround(insPerBurst * frac));
        sample.counters[counters::CounterId::TotCyc] +=
            static_cast<std::uint64_t>(std::llround(insPerBurst * frac));
        t.addSample(sample);
      }

      now += kBurstNs;
      cum[counters::CounterId::TotIns] +=
          static_cast<std::uint64_t>(std::llround(insPerBurst));
      cum[counters::CounterId::TotCyc] +=
          static_cast<std::uint64_t>(std::llround(insPerBurst));
      trace::Event end = begin;
      end.time = now;
      end.kind = trace::EventKind::PhaseEnd;
      end.counters = cum;
      t.addEvent(end);

      trace::Event mb = end;
      mb.kind = trace::EventKind::MpiBegin;
      mb.value = static_cast<std::uint32_t>(trace::MpiOp::Barrier);
      mb.time = now + kGapNs / 4;
      t.addEvent(mb);
      trace::Event me = mb;
      me.kind = trace::EventKind::MpiEnd;
      me.time = now + kGapNs / 2;
      t.addEvent(me);
      now += kGapNs;
    }
    duration = std::max(duration, now + 1000);
  }
  t.setDurationNs(duration);
  t.finalize();
  return t;
}

/// The wavesim run (4 ranks) written as UVTB2, once per test binary.
const std::string& wavesimBinaryPath() {
  static const std::string path = [] {
    const std::string p = tempPath("wavesim") + ".utb";
    trace::writeBinaryFile(testutil::smallWavesimRun().trace, p);
    return p;
  }();
  return path;
}

// Every in-process invocation runs --no-telemetry: the telemetry session is
// a process-global slot, and the daemon tests overlap runCli calls across
// threads — a per-call session would be torn down under the daemon's spans.
std::string runAnalyzeCli(const std::vector<std::string>& extra,
                          const std::string& path, int expectRc = 0) {
  std::vector<std::string> argv = {"analyze", "--trace", path, "--no-flightrec",
                                   "--no-telemetry"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  std::ostringstream out;
  const int rc = cli::runCli(argv, out);
  EXPECT_EQ(rc, expectRc) << out.str();
  return out.str();
}

// --- shard stream reader ---------------------------------------------------

TEST(ShardStream, HeaderAndShardsMatchBatchRead) {
  const auto& run = testutil::smallWavesimRun();
  trace::ShardStreamReader reader(wavesimBinaryPath());
  EXPECT_EQ(reader.header().appName, run.trace.appName());
  EXPECT_EQ(reader.header().ranks, run.trace.numRanks());
  EXPECT_EQ(reader.header().durationNs, run.trace.durationNs());

  const auto batchStats = run.trace.stats();
  std::uint64_t events = 0, samples = 0, states = 0;
  trace::Rank expect = 0;
  while (auto shard = reader.next()) {
    EXPECT_EQ(shard->rank, expect++);
    EXPECT_FALSE(shard->dropped);
    // Full rank count, this rank's records only.
    EXPECT_EQ(shard->trace.numRanks(), run.trace.numRanks());
    for (const auto& e : shard->trace.events()) EXPECT_EQ(e.rank, shard->rank);
    events += shard->trace.events().size();
    samples += shard->trace.samples().size();
    states += shard->trace.states().size();
  }
  EXPECT_EQ(expect, run.trace.numRanks());
  EXPECT_EQ(events, batchStats.events);
  EXPECT_EQ(samples, batchStats.samples);
  EXPECT_EQ(states, batchStats.states);
  EXPECT_TRUE(reader.report().droppedShards.empty());
}

TEST(ShardStream, RejectsTextTraces) {
  const std::string path = tempPath("text") + ".trace";
  trace::writeFile(testutil::smallWavesimRun().trace, path);
  EXPECT_FALSE(trace::isShardStreamable(path));
  EXPECT_THROW((void)trace::ShardStreamReader(path), TraceError);
  EXPECT_FALSE(trace::isShardStreamable(tempPath("absent")));
  EXPECT_TRUE(trace::isShardStreamable(wavesimBinaryPath()));
}

TEST(ShardStream, TruncatedFileDegradesTailShardsOnly) {
  const std::string full = wavesimBinaryPath();
  std::ifstream in(full, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const std::string cutPath = tempPath("cut") + ".utb";
  {
    std::ofstream outFile(cutPath, std::ios::binary);
    outFile.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - bytes.size() / 4));
  }
  trace::StreamOptions options;
  options.read.strict = false;
  trace::ShardStreamReader reader(cutPath, options);
  std::size_t survived = 0, dropped = 0;
  bool sawDropAfterSurvivor = false;
  while (auto shard = reader.next()) {
    if (shard->dropped) {
      ++dropped;
      EXPECT_NE(shard->dropReason.find("truncated"), std::string::npos)
          << shard->dropReason;
    } else {
      ++survived;
      EXPECT_EQ(dropped, 0u) << "survivor after a truncation drop";
      (void)sawDropAfterSurvivor;
    }
  }
  EXPECT_GT(survived, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(reader.report().droppedShards.size(), dropped);

  // Strict mode throws instead, with the batch reader's truncation wording.
  trace::StreamOptions strict;
  strict.read.strict = true;
  trace::ShardStreamReader strictReader(cutPath, strict);
  try {
    while (strictReader.next()) {
    }
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[file="), std::string::npos)
        << e.what();
  }
}

// --- bit-identity ----------------------------------------------------------

TEST(Streaming, CliOutputBitIdenticalToBatch) {
  const std::string batch = runAnalyzeCli({}, wavesimBinaryPath());
  ASSERT_NE(batch.find("detected computation phases"), std::string::npos);
  for (const char* threads : {"1", "2", "5"}) {
    const std::string streamed =
        runAnalyzeCli({"--stream", "--threads", threads}, wavesimBinaryPath());
    EXPECT_EQ(batch, streamed) << "threads=" << threads;
  }
}

TEST(Streaming, CliOutputBitIdenticalWithFoldCap) {
  // The reservoir cap changes which points are retained, so it must be set
  // in BOTH modes — and then the outputs agree bit for bit again.
  const std::string batch =
      runAnalyzeCli({"--fold-max-points", "200"}, wavesimBinaryPath());
  const std::string streamed = runAnalyzeCli(
      {"--fold-max-points", "200", "--stream"}, wavesimBinaryPath());
  EXPECT_EQ(batch, streamed);
}

TEST(Streaming, DegradedCliOutputBitIdenticalToBatch) {
  // Cut the file mid-shard: the same tail shards drop in both modes, with
  // identical warning lines and identical surviving-rank analysis.
  std::ifstream in(wavesimBinaryPath(), std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const std::string cutPath = tempPath("cli_cut") + ".utb";
  {
    std::ofstream outFile(cutPath, std::ios::binary);
    outFile.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - bytes.size() / 5));
  }
  const std::string batch = runAnalyzeCli({}, cutPath);
  ASSERT_NE(batch.find("warning: dropped"), std::string::npos) << batch;
  const std::string streamed = runAnalyzeCli({"--stream"}, cutPath);
  EXPECT_EQ(batch, streamed);
}

TEST(Streaming, StreamRejectsFocus) {
  std::ostringstream out;
  const int rc = cli::runCli({"analyze", "--trace", wavesimBinaryPath(),
                              "--stream", "--focus", "3", "--no-flightrec"},
                             out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("--stream and --focus"), std::string::npos)
      << out.str();
}

// --- fault isolation -------------------------------------------------------

TEST(Streaming, PerRequestFaultDoesNotLeakIntoNextRun) {
  analysis::StreamingConfig config;
  config.read.strict = false;
  config.fault = support::FaultSpec::parse("fail-read-after=" +
                                           std::to_string(std::filesystem::file_size(
                                               wavesimBinaryPath()) *
                                           3 / 4));
  const auto degraded = analysis::analyzeStreaming(wavesimBinaryPath(), config);
  EXPECT_FALSE(degraded.report.droppedShards.empty());

  // Same process, same file, no per-request fault: clean.
  analysis::StreamingConfig clean;
  clean.read.strict = false;
  const auto healthy = analysis::analyzeStreaming(wavesimBinaryPath(), clean);
  EXPECT_TRUE(healthy.report.droppedShards.empty());
  EXPECT_EQ(healthy.shardsProcessed,
            static_cast<std::size_t>(healthy.numRanks));
}

// --- bounded memory --------------------------------------------------------

/// Resets /proc/self/clear_refs so VmHWM re-baselines at the current RSS;
/// false where the kernel interface is unavailable.
bool resetPeakRss() {
  std::ofstream f("/proc/self/clear_refs");
  if (!f) return false;
  f << "5";
  f.flush();
  return static_cast<bool>(f);
}

TEST(Streaming, ManyShardTraceRunsInBoundedMemory) {
  constexpr trace::Rank kRanks = 64;
  const std::string path = tempPath("manyshard") + ".utb";
  std::size_t decodedTotalBytes = 0;
  {
    const trace::Trace big = makeManyShardTrace(kRanks, 12, 1200);
    decodedTotalBytes = big.stats().estimatedBytes;
    trace::writeBinaryFile(big, path);
  }  // the full trace dies here; only the file remains

  if (!resetPeakRss())
    GTEST_SKIP() << "/proc/self/clear_refs unavailable; cannot measure peak RSS";
  const auto before = support::readMemoryStatus();
  if (before.rssBytes == 0 || before.hwmBytes > before.rssBytes + (64u << 20))
    GTEST_SKIP() << "VmHWM did not re-baseline (rss=" << before.rssBytes
                 << " hwm=" << before.hwmBytes << ")";

  analysis::StreamingConfig config;
  config.read.strict = false;
  // The synthetic bursts are near-identical by construction, which is a
  // degenerate cloud for eps auto-estimation; pin eps — this test is about
  // memory, not clustering quality.
  config.pipeline.autoEps = false;
  config.pipeline.dbscan.eps = 0.5;
  // The fold clouds are the one O(samples) term; cap them (deterministic
  // reservoir) as a bounded-memory deployment would.
  config.pipeline.reconstruct.fold.maxPointsPerCounter = 4000;
  const auto result = analysis::analyzeStreaming(path, config);
  const auto after = support::readMemoryStatus();

  EXPECT_EQ(result.shardsProcessed, static_cast<std::size_t>(kRanks));
  EXPECT_EQ(result.numRanks, kRanks);
  ASSERT_GT(result.largestShardBytes, 512u * 1024) << "shards too small to "
      "make the bound meaningful";
  ASSERT_GT(decodedTotalBytes, result.largestShardBytes * (kRanks / 2));

  const std::uint64_t growth = after.hwmBytes > before.rssBytes
                                   ? after.hwmBytes - before.rssBytes
                                   : 0;
  // O(largest shard), not O(trace): one decoded shard plus its in-flight
  // copy, with a fixed allowance for burst metadata, the model stages and
  // allocator slack. A batch read would have grown by decodedTotalBytes.
  EXPECT_LE(growth,
            2 * result.largestShardBytes + (8u << 20))
      << "largest shard " << result.largestShardBytes << ", total "
      << decodedTotalBytes;
  EXPECT_LE(growth, decodedTotalBytes / 6)
      << "peak grew like O(trace), not O(shard)";
  std::filesystem::remove(path);
}

// --- the serve daemon ------------------------------------------------------

class ServeDaemon : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_ = ::testing::TempDir() + "/unveil_srv." +
              std::to_string(::getpid()) + ".sock";
    ASSERT_LT(socket_.size(), 100u) << socket_;
    server_ = std::thread([this] {
      std::ostringstream out;
      serverRc_ = cli::runCli({"serve", "--socket", socket_, "--no-flightrec",
                               "--no-telemetry"},
                              out);
      serverOut_ = out.str();
    });
    // Readiness: retry pings until the daemon answers.
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
      try {
        const std::string pong = cli::serverRoundTrip(
            socket_, R"({"id":"up","command":"ping"})", 2.0);
        up = pong.find("pong") != std::string::npos;
      } catch (const Error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    ASSERT_TRUE(up) << serverOut_;
  }

  void TearDown() override {
    if (server_.joinable()) {
      try {
        (void)cli::serverRoundTrip(socket_,
                                   R"({"id":"down","command":"shutdown"})", 10.0);
      } catch (const Error&) {
      }
      server_.join();
    }
    EXPECT_EQ(serverRc_, 0) << serverOut_;
  }

  static std::string analyzeRequest(const std::string& id,
                                    const std::string& extraFields = {}) {
    return "{\"id\":\"" + id + "\",\"command\":\"analyze\",\"trace\":\"" +
           wavesimBinaryPath() + "\"" + extraFields + "}";
  }

  std::string socket_;
  std::thread server_;
  int serverRc_ = -1;
  std::string serverOut_;
};

TEST_F(ServeDaemon, AnalyzeResponseMatchesBatchCliBytes) {
  const std::string batch = runAnalyzeCli({}, wavesimBinaryPath());
  const auto response =
      support::json::parse(cli::serverRoundTrip(socket_, analyzeRequest("a")));
  ASSERT_NE(response.find("output"), nullptr);
  EXPECT_EQ(response.find("exit")->asDouble(-1), 0.0);
  EXPECT_EQ(response.find("output")->asString(), batch);
  EXPECT_EQ(response.find("id")->asString(), "a");
}

TEST_F(ServeDaemon, ConcurrentRequestsIsolateInjectedFault) {
  const std::string batch = runAnalyzeCli({}, wavesimBinaryPath());
  const auto faultSize = std::filesystem::file_size(wavesimBinaryPath()) * 3 / 4;
  const std::string faultReq = analyzeRequest(
      "bad", ",\"fault_spec\":\"fail-read-after=" + std::to_string(faultSize) +
                 "\"");

  constexpr int kClean = 4;
  std::vector<std::string> outputs(kClean);
  std::string faultOutput;
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClean + 1);
  for (int i = 0; i < kClean; ++i) {
    clients.emplace_back([this, i, &outputs, &errors] {
      try {
        const auto r = support::json::parse(
            cli::serverRoundTrip(socket_, analyzeRequest(std::to_string(i))));
        outputs[static_cast<std::size_t>(i)] = r.find("output")->asString();
      } catch (const Error&) {
        errors.fetch_add(1);
      }
    });
  }
  clients.emplace_back([this, &faultReq, &faultOutput, &errors] {
    try {
      const auto r =
          support::json::parse(cli::serverRoundTrip(socket_, faultReq, 60.0));
      faultOutput = r.find("output")->asString();
    } catch (const Error&) {
      errors.fetch_add(1);
    }
  });
  for (auto& c : clients) c.join();

  EXPECT_EQ(errors.load(), 0);
  for (const auto& o : outputs) EXPECT_EQ(o, batch);
  // The faulty request degraded alone...
  EXPECT_NE(faultOutput.find("warning: dropped"), std::string::npos)
      << faultOutput;
  EXPECT_NE(faultOutput, batch);
  // ...and the daemon is still clean afterwards.
  const auto again =
      support::json::parse(cli::serverRoundTrip(socket_, analyzeRequest("z")));
  EXPECT_EQ(again.find("output")->asString(), batch);
}

TEST_F(ServeDaemon, HealthAndErrorsAreStructured) {
  const auto health = support::json::parse(
      cli::serverRoundTrip(socket_, R"({"id":"h","command":"health"})"));
  ASSERT_NE(health.find("output"), nullptr);
  const auto body = support::json::parse(health.find("output")->asString());
  EXPECT_GE(body.find("requests_total")->asDouble(-1), 1.0);
  EXPECT_GE(body.find("requests_active")->asDouble(-1), 1.0);

  const auto unknown = support::json::parse(
      cli::serverRoundTrip(socket_, R"({"id":"u","command":"explode"})"));
  EXPECT_EQ(unknown.find("exit")->asDouble(0), 2.0);
  EXPECT_NE(unknown.find("output")->asString().find("unknown command"),
            std::string::npos);

  const auto garbage =
      support::json::parse(cli::serverRoundTrip(socket_, "this is not json"));
  EXPECT_EQ(garbage.find("status")->asString(), "error");

  const auto missingTrace = support::json::parse(cli::serverRoundTrip(
      socket_, R"({"id":"m","command":"analyze","trace":"/nonexistent.utb"})"));
  EXPECT_NE(missingTrace.find("exit")->asDouble(0), 0.0);
  EXPECT_NE(missingTrace.find("output")->asString().find("error:"),
            std::string::npos);
}

TEST_F(ServeDaemon, ClientCommandRoundTrips) {
  const std::string batch = runAnalyzeCli({}, wavesimBinaryPath());
  std::ostringstream out;
  const int rc = cli::runCli({"client", "--socket", socket_, "--trace",
                              wavesimBinaryPath(), "--no-flightrec",
                              "--no-telemetry"},
                             out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_EQ(out.str(), batch);

  std::ostringstream ping;
  EXPECT_EQ(cli::runCli({"client", "--socket", socket_, "--ping",
                         "--no-flightrec", "--no-telemetry"},
                        ping),
            0);
  EXPECT_EQ(ping.str(), "pong\n");
}

TEST(Serve, RefusesSecondDaemonOnLiveSocket) {
  const std::string socketPath = ::testing::TempDir() + "/unveil_srv_dup." +
                                 std::to_string(::getpid()) + ".sock";
  std::thread server([&] {
    std::ostringstream out;
    EXPECT_EQ(cli::runCli({"serve", "--socket", socketPath, "--no-flightrec",
                           "--no-telemetry"},
                          out),
              0)
        << out.str();
  });
  bool up = false;
  for (int i = 0; i < 200 && !up; ++i) {
    try {
      up = cli::serverRoundTrip(socketPath, R"({"command":"ping"})", 2.0)
               .find("pong") != std::string::npos;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(up);

  std::ostringstream second;
  EXPECT_EQ(cli::runCli({"serve", "--socket", socketPath, "--no-flightrec",
                         "--no-telemetry"},
                        second),
            1);
  EXPECT_NE(second.str().find("already listening"), std::string::npos)
      << second.str();

  (void)cli::serverRoundTrip(socketPath, R"({"command":"shutdown"})", 10.0);
  server.join();
  EXPECT_FALSE(std::filesystem::exists(socketPath)) << "socket leaked";
}

}  // namespace
}  // namespace unveil
