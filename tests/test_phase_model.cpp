/// Tests for PhaseModel / RealizedBurst / NoiseModel — the ground-truth
/// counter machinery every simulated probe and sample flows through.

#include <gtest/gtest.h>

#include "unveil/counters/noise.hpp"
#include "unveil/counters/phase_model.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::counters {
namespace {

std::array<double, kNumCounters> unitFactors() {
  std::array<double, kNumCounters> f;
  f.fill(1.0);
  return f;
}

TEST(PhaseModel, DefaultsToZeroCounters) {
  const PhaseModel m("empty");
  for (CounterId id : kAllCounters) {
    EXPECT_EQ(m.profile(id).baseTotal, 0.0);
  }
}

TEST(PhaseModel, SetCounterStoresProfile) {
  PhaseModel m("p");
  m.setCounter(CounterId::TotIns, 1e6, RateShape::ramp(2.0, 1.0));
  EXPECT_DOUBLE_EQ(m.profile(CounterId::TotIns).baseTotal, 1e6);
  EXPECT_NEAR(m.normalizedRate(CounterId::TotIns, 0.0), 2.0 / 1.5, 1e-9);
  EXPECT_NEAR(m.cdf(CounterId::TotIns, 1.0), 1.0, 1e-9);
}

TEST(PhaseModel, NegativeTotalRejected) {
  PhaseModel m("p");
  EXPECT_THROW(m.setCounter(CounterId::TotIns, -1.0, RateShape::constant()),
               ConfigError);
}

TEST(RealizedBurst, TotalsScaleWithFactors) {
  PhaseModel m("p");
  m.setCounter(CounterId::TotIns, 1000.0, RateShape::constant());
  auto f = unitFactors();
  f[counterIndex(CounterId::TotIns)] = 2.5;
  const RealizedBurst b(m, f);
  EXPECT_DOUBLE_EQ(b.total(CounterId::TotIns), 2500.0);
  EXPECT_EQ(b.cumulativeAt(CounterId::TotIns, 1.0), 2500u);
  EXPECT_EQ(b.cumulativeAt(CounterId::TotIns, 0.0), 0u);
}

TEST(RealizedBurst, SnapshotsMonotoneOnFineGrid) {
  PhaseModel m("p");
  m.setCounter(CounterId::TotIns, 123456.0, RateShape::sawtooth(3, 0.5, 2.0));
  m.setCounter(CounterId::L2Dcm, 777.0, RateShape::bump(0.5, 2.0, 0.3, 0.1));
  const RealizedBurst b(m, unitFactors());
  CounterSet prev = b.snapshotAt(0.0);
  for (double t : support::linspace(0.0, 1.0, 1000)) {
    const CounterSet cur = b.snapshotAt(t);
    for (std::size_t i = 0; i < kNumCounters; ++i)
      EXPECT_GE(cur.values[i], prev.values[i]) << "at t=" << t;
    prev = cur;
  }
}

TEST(RealizedBurst, ExactMatchesRoundedAccessor) {
  PhaseModel m("p");
  m.setCounter(CounterId::FpOps, 5000.0, RateShape::ramp(1.0, 3.0));
  const RealizedBurst b(m, unitFactors());
  for (double t : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(b.cumulativeAt(CounterId::FpOps, t),
              static_cast<std::uint64_t>(
                  std::llround(b.cumulativeAtExact(CounterId::FpOps, t))));
  }
}

TEST(NoiseModel, ValidateRejectsNegativeSigmas) {
  NoiseModel n;
  n.commonSigma = -0.1;
  EXPECT_THROW(n.validate(), ConfigError);
  n = NoiseModel{};
  n.counterSigma = -0.1;
  EXPECT_THROW(n.validate(), ConfigError);
  n = NoiseModel{};
  n.warpSigma = -0.1;
  EXPECT_THROW(n.validate(), ConfigError);
  n = NoiseModel{};
  n.outlierProb = 1.5;
  EXPECT_THROW(n.validate(), ConfigError);
}

TEST(NoiseModel, FactorsCenterOnOne) {
  NoiseModel n;
  n.commonSigma = 0.05;
  n.counterSigma = 0.02;
  support::Rng rng(23);
  support::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    const auto f = n.realize(rng);
    for (double x : f) {
      EXPECT_GT(x, 0.0);
      stats.add(x);
    }
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.01);
}

TEST(NoiseModel, ZeroSigmaGivesUnitFactors) {
  NoiseModel n;
  n.commonSigma = 0.0;
  n.counterSigma = 0.0;
  support::Rng rng(23);
  const auto f = n.realize(rng);
  for (double x : f) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(NoiseModel, WarpMedianNearOne) {
  NoiseModel n;
  n.warpSigma = 0.1;
  n.outlierProb = 0.0;
  support::Rng rng(29);
  std::vector<double> w;
  for (int i = 0; i < 4001; ++i) w.push_back(n.realizeWarp(rng));
  EXPECT_NEAR(support::median(w), 1.0, 0.02);
}

TEST(NoiseModel, OutliersWidenWarpTail) {
  NoiseModel pure;
  pure.warpSigma = 0.02;
  pure.outlierProb = 0.0;
  NoiseModel contaminated = pure;
  contaminated.outlierProb = 0.2;
  contaminated.outlierWarpSigma = 1.0;
  support::Rng r1(31), r2(31);
  double maxPure = 0.0, maxCont = 0.0;
  for (int i = 0; i < 2000; ++i) {
    maxPure = std::max(maxPure, pure.realizeWarp(r1));
    maxCont = std::max(maxCont, contaminated.realizeWarp(r2));
  }
  EXPECT_GT(maxCont, maxPure);
}

}  // namespace
}  // namespace unveil::counters
