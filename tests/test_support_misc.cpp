/// Tests for tables, series, math helpers and the logger.

#include <gtest/gtest.h>

#include <sstream>

#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/series.hpp"
#include "unveil/support/table.hpp"

namespace unveil::support {
namespace {

TEST(Table, RequiresColumns) { EXPECT_THROW(Table({}), ConfigError); }

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({1LL}), ConfigError);
  EXPECT_THROW(t.addRow({1LL, 2LL, 3LL}), ConfigError);
  t.addRow({1LL, 2LL});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, FormatCellVariants) {
  EXPECT_EQ(Table::formatCell(Cell{std::string("x")}), "x");
  EXPECT_EQ(Table::formatCell(Cell{42LL}), "42");
  EXPECT_EQ(Table::formatCell(Cell{1.5}), "1.5000");
  // Very large/small magnitudes switch to compact scientific-ish formatting.
  EXPECT_EQ(Table::formatCell(Cell{12345678.0}), "1.235e+07");
  EXPECT_EQ(Table::formatCell(Cell{0.0}), "0.0000");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.addRow({std::string("a,b"), std::string("say \"hi\"")});
  std::ostringstream os;
  t.writeCsv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrintContainsHeaderAndTitle) {
  Table t({"col"});
  t.addRow({7LL});
  std::ostringstream os;
  t.print(os, "my title");
  EXPECT_NE(os.str().find("my title"), std::string::npos);
  EXPECT_NE(os.str().find("col"), std::string::npos);
  EXPECT_NE(os.str().find('7'), std::string::npos);
}

TEST(Table, AtBoundsChecked) {
  Table t({"a"});
  t.addRow({1LL});
  EXPECT_EQ(std::get<long long>(t.at(0, 0)), 1);
}

TEST(Series, LengthMismatchRejected) {
  SeriesSet set("f", "x", "y");
  EXPECT_THROW(set.add("s", {1.0, 2.0}, {1.0}), ConfigError);
}

TEST(Series, WriteFormat) {
  SeriesSet set("fig1", "time", "value");
  set.add("curve", {0.0, 1.0}, {2.0, 3.0});
  std::ostringstream os;
  set.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# figure: fig1"), std::string::npos);
  EXPECT_NE(out.find("# series: curve"), std::string::npos);
  EXPECT_NE(out.find("0 2"), std::string::npos);
  EXPECT_NE(out.find("1 3"), std::string::npos);
}

TEST(Series, SummaryListsCounts) {
  SeriesSet set("fig", "x", "y");
  set.add("s1", {0.0, 0.5, 1.0}, {1.0, 2.0, 3.0});
  std::ostringstream os;
  set.printSummary(os);
  EXPECT_NE(os.str().find("3 points"), std::string::npos);
}

TEST(Math, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Math, Lerp) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

TEST(Math, ApproxEqual) {
  EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approxEqual(1.0, 1.001));
  EXPECT_TRUE(approxEqual(0.0, 0.0));
}

TEST(Math, InterpLinear) {
  const std::vector<double> xs = {0.0, 1.0, 3.0};
  const std::vector<double> ys = {0.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, -1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 10.0), 30.0);  // clamp high
}

TEST(Math, Trapezoid) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(trapezoid(xs, ys), 1.0);
}

TEST(Log, LevelFiltering) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Off);
  logError("should be dropped silently");
  setLogLevel(LogLevel::Warn);
  EXPECT_EQ(logLevel(), LogLevel::Warn);
  setLogLevel(before);
}

}  // namespace
}  // namespace unveil::support
