/// Tests for clustering quality metrics (ARI, purity, silhouette, confusion).

#include <gtest/gtest.h>

#include <set>

#include "unveil/cluster/quality.hpp"
#include "unveil/support/error.hpp"

namespace unveil::cluster {
namespace {

TEST(Ari, PerfectAgreement) {
  const std::vector<int> pred = {0, 0, 1, 1, 2, 2};
  const std::vector<std::uint32_t> truth = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(adjustedRandIndex(pred, truth), 1.0, 1e-12);
}

TEST(Ari, LabelPermutationInvariant) {
  const std::vector<int> pred = {2, 2, 0, 0, 1, 1};
  const std::vector<std::uint32_t> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(adjustedRandIndex(pred, truth), 1.0, 1e-12);
}

TEST(Ari, SplittingOneClassScoresZero) {
  // Splitting a single truth class in two is no better than chance: the
  // adjusted index is exactly 0.
  const std::vector<int> pred = {0, 0, 1, 1};
  const std::vector<std::uint32_t> truth = {0, 0, 0, 0};
  EXPECT_NEAR(adjustedRandIndex(pred, truth), 0.0, 1e-12);
}

TEST(Ari, DisagreementIsLow) {
  const std::vector<int> pred = {0, 1, 0, 1, 0, 1, 0, 1};
  const std::vector<std::uint32_t> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_LT(adjustedRandIndex(pred, truth), 0.1);
}

TEST(Ari, MismatchedLengthRejected) {
  const std::vector<int> pred = {0};
  const std::vector<std::uint32_t> truth = {0, 1};
  EXPECT_THROW((void)adjustedRandIndex(pred, truth), ConfigError);
}

TEST(Ari, EmptyIsPerfect) {
  EXPECT_EQ(adjustedRandIndex({}, {}), 1.0);
}

TEST(Purity, PerfectClusters) {
  const std::vector<int> pred = {0, 0, 1, 1};
  const std::vector<std::uint32_t> truth = {3, 3, 8, 8};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

TEST(Purity, MajorityCounted) {
  const std::vector<int> pred = {0, 0, 0, 1};
  const std::vector<std::uint32_t> truth = {1, 1, 2, 2};
  // Cluster 0: majority label 1 (2 of 3); cluster 1: 1 of 1 -> (2+1)/4.
  EXPECT_DOUBLE_EQ(purity(pred, truth), 0.75);
}

TEST(Purity, NoiseCountsAsError) {
  const std::vector<int> pred = {kNoiseLabel, 0, 0};
  const std::vector<std::uint32_t> truth = {1, 1, 1};
  EXPECT_NEAR(purity(pred, truth), 2.0 / 3.0, 1e-12);
}

TEST(Silhouette, WellSeparatedNearOne) {
  FeatureMatrix m(8, 1);
  std::vector<int> labels(8);
  for (std::size_t i = 0; i < 4; ++i) {
    m.at(i, 0) = static_cast<double>(i) * 0.01;
    labels[i] = 0;
  }
  for (std::size_t i = 4; i < 8; ++i) {
    m.at(i, 0) = 100.0 + static_cast<double>(i) * 0.01;
    labels[i] = 1;
  }
  EXPECT_GT(silhouette(m, labels), 0.95);
}

TEST(Silhouette, SingleClusterIsZero) {
  FeatureMatrix m(4, 1);
  const std::vector<int> labels = {0, 0, 0, 0};
  EXPECT_EQ(silhouette(m, labels), 0.0);
}

TEST(Silhouette, IgnoresNoise) {
  FeatureMatrix m(5, 1);
  m.at(0, 0) = 0.0;
  m.at(1, 0) = 0.1;
  m.at(2, 0) = 50.0;
  m.at(3, 0) = 50.1;
  m.at(4, 0) = 25.0;  // noise in the middle
  const std::vector<int> labels = {0, 0, 1, 1, kNoiseLabel};
  EXPECT_GT(silhouette(m, labels), 0.9);
}

TEST(Silhouette, MismatchedSizesRejected) {
  FeatureMatrix m(2, 1);
  const std::vector<int> labels = {0};
  EXPECT_THROW((void)silhouette(m, labels), ConfigError);
}

TEST(Confusion, CountsAndNoiseRow) {
  const std::vector<int> pred = {0, 0, 1, kNoiseLabel};
  const std::vector<std::uint32_t> truth = {7, 8, 8, 7};
  const auto cm = confusionMatrix(pred, truth);
  ASSERT_EQ(cm.truthLabels.size(), 2u);
  EXPECT_EQ(cm.truthLabels[0], 7u);
  EXPECT_EQ(cm.truthLabels[1], 8u);
  EXPECT_TRUE(cm.hasNoiseRow);
  ASSERT_EQ(cm.counts.size(), 3u);  // clusters 0,1 + noise
  EXPECT_EQ(cm.counts[0][0], 1u);   // cluster 0, truth 7
  EXPECT_EQ(cm.counts[0][1], 1u);   // cluster 0, truth 8
  EXPECT_EQ(cm.counts[1][1], 1u);   // cluster 1, truth 8
  EXPECT_EQ(cm.counts[2][0], 1u);   // noise, truth 7
}

TEST(Confusion, NoNoise) {
  const std::vector<int> pred = {0, 1};
  const std::vector<std::uint32_t> truth = {0, 1};
  const auto cm = confusionMatrix(pred, truth);
  EXPECT_FALSE(cm.hasNoiseRow);
  EXPECT_EQ(cm.counts.size(), 2u);
}

}  // namespace
}  // namespace unveil::cluster
