/// Tests for PMU counter multiplexing: mask semantics, engine rotation,
/// serialization of partial samples, and folding on partial data.

#include <gtest/gtest.h>

#include <sstream>

#include "unveil/analysis/experiments.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/sim/measurement.hpp"
#include "unveil/support/error.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"

namespace unveil {
namespace {

using counters::CounterId;

TEST(MultiplexMask, SingleGroupIsFull) {
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_EQ(sim::multiplexMask(1, k), trace::kAllCountersMask);
}

TEST(MultiplexMask, FixedCountersAlwaysPresent) {
  for (std::size_t groups : {2u, 3u, 4u}) {
    for (std::size_t k = 0; k < 8; ++k) {
      const auto mask = sim::multiplexMask(groups, k);
      EXPECT_TRUE(trace::maskHas(mask, CounterId::TotIns));
      EXPECT_TRUE(trace::maskHas(mask, CounterId::TotCyc));
    }
  }
}

TEST(MultiplexMask, RotationCoversEveryCounter) {
  for (std::size_t groups : {2u, 3u, 4u}) {
    trace::CounterMask seen = 0;
    for (std::size_t k = 0; k < groups; ++k) seen |= sim::multiplexMask(groups, k);
    EXPECT_EQ(seen, trace::kAllCountersMask) << groups << " groups";
  }
}

TEST(MultiplexMask, TwoGroupsSplitExtras) {
  const auto g0 = sim::multiplexMask(2, 0);
  const auto g1 = sim::multiplexMask(2, 1);
  // Extras (L1, L2, FP, BR) split evenly and disjointly.
  EXPECT_EQ(g0 & g1, 0b11);  // only the fixed counters shared
  EXPECT_NE(g0, g1);
}

TEST(MultiplexConfig, ZeroGroupsRejected) {
  sim::SamplingConfig c;
  c.multiplexGroups = 0;
  EXPECT_THROW(c.validate(), ConfigError);
}

sim::RunResult multiplexedRun(std::size_t groups) {
  sim::apps::AppParams p;
  p.ranks = 4;
  p.iterations = 60;
  p.seed = 17;
  auto mc = sim::MeasurementConfig::folding();
  mc.sampling.multiplexGroups = groups;
  return analysis::runMeasured("wavesim", p, mc);
}

TEST(MultiplexEngine, MasksRotatePerRank) {
  const auto run = multiplexedRun(2);
  std::map<trace::Rank, std::vector<trace::CounterMask>> perRank;
  for (const auto& s : run.trace.samples()) perRank[s.rank].push_back(s.validMask);
  for (const auto& [rank, masks] : perRank) {
    (void)rank;
    ASSERT_GE(masks.size(), 4u);
    // Consecutive samples alternate between the two groups.
    for (std::size_t i = 1; i < masks.size(); ++i) EXPECT_NE(masks[i], masks[i - 1]);
  }
}

TEST(MultiplexEngine, MaskedCountersAreZeroed) {
  const auto run = multiplexedRun(2);
  for (const auto& s : run.trace.samples()) {
    for (CounterId id : counters::kAllCounters) {
      if (!trace::maskHas(s.validMask, id)) {
        EXPECT_EQ(s.counters[id], 0u);
      }
    }
  }
}

TEST(MultiplexEngine, TraceStillValidates) {
  // finalize() ran inside the engine without throwing; double-check by
  // round-tripping through both formats.
  const auto run = multiplexedRun(3);
  std::stringstream text;
  trace::write(run.trace, text);
  const auto backText = trace::read(text);
  EXPECT_EQ(backText.samples().size(), run.trace.samples().size());
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  trace::writeBinary(run.trace, bin);
  const auto backBin = trace::readBinary(bin);
  ASSERT_EQ(backBin.samples().size(), run.trace.samples().size());
  for (std::size_t i = 0; i < run.trace.samples().size(); ++i) {
    EXPECT_EQ(backBin.samples()[i].validMask, run.trace.samples()[i].validMask);
    EXPECT_EQ(backBin.samples()[i].counters, run.trace.samples()[i].counters);
  }
}

TEST(MultiplexFolding, PartialCountersStillFold) {
  const auto run = multiplexedRun(2);
  const auto result = analysis::analyze(run.trace);
  // Both TOT_INS (always present) and L2 (present in half the samples)
  // reconstruct; the L2 cloud is roughly half as dense.
  for (const auto& c : result.clusters) {
    if (!c.folded) continue;
    const auto ins = c.rates.find(CounterId::TotIns);
    const auto l2 = c.rates.find(CounterId::L2Dcm);
    ASSERT_NE(ins, c.rates.end());
    ASSERT_NE(l2, c.rates.end());
    EXPECT_GT(ins->second.sourcePoints, 0u);
    EXPECT_GT(l2->second.sourcePoints, 0u);
    EXPECT_LT(l2->second.sourcePoints, ins->second.sourcePoints);
    EXPECT_NEAR(static_cast<double>(l2->second.sourcePoints) /
                    static_cast<double>(ins->second.sourcePoints),
                0.5, 0.15);
  }
}

TEST(MultiplexFolding, AccuracyDegradesGracefully) {
  // TOT_INS accuracy should be essentially unaffected by multiplexing
  // (fixed counter); compare against the non-multiplexed run.
  const auto full = multiplexedRun(1);
  const auto half = multiplexedRun(2);
  const auto a = analysis::analyze(full.trace);
  const auto b = analysis::analyze(half.trace);
  const auto dominant = [](const analysis::PipelineResult& r) {
    const analysis::ClusterReport* best = nullptr;
    for (const auto& c : r.clusters)
      if (c.folded && (!best || c.totalTimeFraction > best->totalTimeFraction))
        best = &c;
    return best;
  };
  const auto* da = dominant(a);
  const auto* db = dominant(b);
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  const auto& shapeA = full.app->phase(da->modalTruthPhase)
                           .model.profile(CounterId::TotIns)
                           .shape;
  const auto& curveA = da->rates.at(CounterId::TotIns);
  const auto& curveB = db->rates.at(CounterId::TotIns);
  const double errA = folding::meanAbsDiffPercent(
      curveA.normRate, folding::truthNormalizedRate(shapeA, curveA.t));
  const double errB = folding::meanAbsDiffPercent(
      curveB.normRate, folding::truthNormalizedRate(shapeA, curveB.t));
  EXPECT_LT(errA, 8.0);
  EXPECT_LT(errB, 8.0);
}

}  // namespace
}  // namespace unveil
