/// Tests for the compact binary trace format.

#include <gtest/gtest.h>

#include <sstream>

#include "unveil/support/error.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"
#include "test_util.hpp"

namespace unveil::trace {
namespace {

Trace sampleTrace() {
  testutil::SyntheticSpec spec;
  spec.bursts = 8;
  spec.samplesPerBurst = 4;
  return testutil::makeSyntheticTrace(spec);
}

void expectEqualTraces(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.appName(), b.appName());
  EXPECT_EQ(a.numRanks(), b.numRanks());
  EXPECT_EQ(a.durationNs(), b.durationNs());
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.samples().size(), b.samples().size());
  ASSERT_EQ(a.states().size(), b.states().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].value, b.events()[i].value);
    EXPECT_EQ(a.events()[i].counters, b.events()[i].counters);
  }
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].time, b.samples()[i].time);
    EXPECT_EQ(a.samples()[i].counters, b.samples()[i].counters);
  }
  for (std::size_t i = 0; i < a.states().size(); ++i) {
    EXPECT_EQ(a.states()[i].begin, b.states()[i].begin);
    EXPECT_EQ(a.states()[i].end, b.states()[i].end);
    EXPECT_EQ(a.states()[i].state, b.states()[i].state);
  }
}

TEST(BinaryIo, RoundTripSynthetic) {
  const Trace original = sampleTrace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(original, ss);
  expectEqualTraces(original, readBinary(ss));
}

TEST(BinaryIo, RoundTripSimulatedRun) {
  const auto& run = testutil::smallWavesimRun();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(run.trace, ss);
  expectEqualTraces(run.trace, readBinary(ss));
}

TEST(BinaryIo, MuchSmallerThanText) {
  const auto& run = testutil::smallWavesimRun();
  std::ostringstream text;
  write(run.trace, text);
  const std::size_t binary = binarySize(run.trace);
  EXPECT_LT(binary * 3, text.str().size())
      << "binary " << binary << " vs text " << text.str().size();
}

TEST(BinaryIo, RequiresFinalizedTrace) {
  Trace t("x", 1);
  t.addSample(Sample{});
  std::ostringstream os;
  EXPECT_THROW(writeBinary(t, os), TraceError);
}

TEST(BinaryIo, BadMagicRejected) {
  std::istringstream is("NOTATRACE");
  EXPECT_THROW((void)readBinary(is), TraceError);
}

TEST(BinaryIo, TruncationRejected) {
  const Trace original = sampleTrace();
  std::ostringstream os(std::ios::binary);
  writeBinary(original, os);
  const std::string full = os.str();
  for (std::size_t cut : {full.size() / 4, full.size() / 2, full.size() - 3}) {
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW((void)readBinary(is), TraceError) << "cut at " << cut;
  }
}

TEST(BinaryIo, FileRoundTrip) {
  const Trace original = sampleTrace();
  const std::string path = ::testing::TempDir() + "/unveil_binary_test.utb";
  writeBinaryFile(original, path);
  expectEqualTraces(original, readBinaryFile(path));
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW((void)readBinaryFile("/nonexistent/x.utb"), Error);
}

TEST(BinaryIo, AutoDetectReadsBothFormats) {
  const Trace original = sampleTrace();
  const std::string textPath = ::testing::TempDir() + "/unveil_auto.trace";
  const std::string binPath = ::testing::TempDir() + "/unveil_auto.utb";
  writeFile(original, textPath);
  writeBinaryFile(original, binPath);
  expectEqualTraces(original, readAutoFile(textPath));
  expectEqualTraces(original, readAutoFile(binPath));
}

TEST(BinaryIo, EmptyTraceRoundTrips) {
  Trace t("empty", 3);
  t.setDurationNs(1000);
  t.finalize();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(t, ss);
  const Trace back = readBinary(ss);
  EXPECT_EQ(back.numRanks(), 3u);
  EXPECT_EQ(back.stats().totalRecords, 0u);
}

}  // namespace
}  // namespace unveil::trace
