/// Tests for the Paraver exporter (.prv/.pcf/.row).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "unveil/support/error.hpp"
#include "unveil/trace/paraver.hpp"
#include "test_util.hpp"

namespace unveil::trace {
namespace {

Trace sampleTrace() {
  testutil::SyntheticSpec spec;
  spec.bursts = 3;
  spec.samplesPerBurst = 2;
  return testutil::makeSyntheticTrace(spec);
}

TEST(Paraver, RequiresFinalizedTrace) {
  Trace t("x", 1);
  std::ostringstream os;
  EXPECT_THROW(writeParaverPrv(t, os), TraceError);
}

TEST(Paraver, HeaderFormat) {
  const auto t = sampleTrace();
  std::ostringstream os;
  writeParaverPrv(t, os);
  std::string firstLine = os.str().substr(0, os.str().find('\n'));
  EXPECT_EQ(firstLine.rfind("#Paraver", 0), 0u);
  EXPECT_NE(firstLine.find(":" + std::to_string(t.durationNs()) + ":"),
            std::string::npos);
  EXPECT_NE(firstLine.find("1(1)"), std::string::npos);  // one rank
}

TEST(Paraver, RecordCountsMatchTrace) {
  const auto t = sampleTrace();
  std::ostringstream os;
  writeParaverPrv(t, os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t stateLines = 0, eventLines = 0;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.rfind("1:", 0) == 0) ++stateLines;
    else if (line.rfind("2:", 0) == 0) ++eventLines;
    else FAIL() << "unexpected line: " << line;
  }
  EXPECT_EQ(stateLines, t.states().size());
  // One line per probe event and one per sample (counters inline).
  EXPECT_EQ(eventLines, t.events().size() + t.samples().size());
}

TEST(Paraver, BodyIsTimeOrdered) {
  const auto& run = testutil::smallWavesimRun();
  std::ostringstream os;
  writeParaverPrv(run.trace, os);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);  // header
  TimeNs prev = 0;
  while (std::getline(is, line)) {
    // Field 6 is the (begin) timestamp for both record kinds.
    std::size_t pos = 0;
    for (int f = 0; f < 5; ++f) pos = line.find(':', pos) + 1;
    const TimeNs t = std::stoull(line.substr(pos));
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Paraver, PhaseEventsEncodeEnterExit) {
  const auto t = sampleTrace();
  std::ostringstream os;
  writeParaverPrv(t, os);
  const std::string body = os.str();
  const std::string typeStr = std::to_string(ParaverCodes::kPhaseType);
  // Entry: value = phaseId + 1 = 1; exit: value 0.
  EXPECT_NE(body.find(typeStr + ":1"), std::string::npos);
  EXPECT_NE(body.find(typeStr + ":0"), std::string::npos);
}

TEST(Paraver, PcfListsCountersAndMpi) {
  const auto t = sampleTrace();
  std::ostringstream os;
  writeParaverPcf(t, os);
  const std::string pcf = os.str();
  EXPECT_NE(pcf.find("PAPI_TOT_INS"), std::string::npos);
  EXPECT_NE(pcf.find("MPI_Allreduce"), std::string::npos);
  EXPECT_NE(pcf.find("Computation phase"), std::string::npos);
  EXPECT_NE(pcf.find("STATES"), std::string::npos);
}

TEST(Paraver, RowListsRanks) {
  testutil::SyntheticSpec spec;
  auto t = testutil::makeSyntheticTrace(spec);
  std::ostringstream os;
  writeParaverRow(t, os);
  EXPECT_NE(os.str().find("LEVEL TASK SIZE 1"), std::string::npos);
  EXPECT_NE(os.str().find("Rank 0"), std::string::npos);
}

TEST(Paraver, ExportWritesTriple) {
  const auto t = sampleTrace();
  const std::string base = ::testing::TempDir() + "/unveil_paraver_test";
  exportParaver(t, base);
  for (const char* ext : {".prv", ".pcf", ".row"}) {
    std::ifstream f(base + ext);
    EXPECT_TRUE(f.good()) << ext;
    std::string first;
    std::getline(f, first);
    EXPECT_FALSE(first.empty()) << ext;
  }
}

}  // namespace
}  // namespace unveil::trace
