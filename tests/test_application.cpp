/// Tests for the application-model layer: duration specs, program building,
/// determinism and the iteration builder.

#include <gtest/gtest.h>

#include <variant>

#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/apps/calibrate.hpp"
#include "unveil/support/error.hpp"

namespace unveil::sim {
namespace {

using apps::AppParams;

TEST(DurationSpec, Validation) {
  DurationSpec d;
  d.nominalNs = 0.0;
  EXPECT_THROW(d.validate(), ConfigError);
  d = DurationSpec{};
  d.instanceSigma = -1.0;
  EXPECT_THROW(d.validate(), ConfigError);
  d = DurationSpec{};
  d.drift = -0.95;
  EXPECT_THROW(d.validate(), ConfigError);
  EXPECT_NO_THROW(DurationSpec{}.validate());
}

TEST(AppParams, Validation) {
  AppParams p;
  p.ranks = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = AppParams{};
  p.iterations = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = AppParams{};
  p.scale = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Calibrate, TotalsFollowFormulas) {
  apps::PhaseCalibration cal;
  cal.avgMips = 2000.0;
  cal.ipc = 2.0;
  cal.fpFrac = 0.5;
  cal.l2PerKIns = 4.0;
  const auto m = apps::calibratePhase("p", 1e6, cal);  // 1 ms
  using counters::CounterId;
  const double ins = m.profile(CounterId::TotIns).baseTotal;
  EXPECT_DOUBLE_EQ(ins, 2.0e6);  // 2 ins/ns * 1e6 ns
  EXPECT_DOUBLE_EQ(m.profile(CounterId::TotCyc).baseTotal, 1.0e6);
  EXPECT_DOUBLE_EQ(m.profile(CounterId::FpOps).baseTotal, 1.0e6);
  EXPECT_DOUBLE_EQ(m.profile(CounterId::L2Dcm).baseTotal, 8.0e3);
}

TEST(Program, DeterministicPerSeed) {
  AppParams p;
  p.ranks = 3;
  p.iterations = 5;
  p.seed = 77;
  const auto a1 = apps::makeWavesim(p);
  const auto a2 = apps::makeWavesim(p);
  for (trace::Rank r = 0; r < p.ranks; ++r) {
    const auto prog1 = a1->buildProgram(r);
    const auto prog2 = a2->buildProgram(r);
    ASSERT_EQ(prog1.size(), prog2.size());
    for (std::size_t i = 0; i < prog1.size(); ++i) {
      if (const auto* c1 = std::get_if<ComputeAction>(&prog1[i])) {
        const auto* c2 = std::get_if<ComputeAction>(&prog2[i]);
        ASSERT_NE(c2, nullptr);
        EXPECT_EQ(c1->workNs, c2->workNs);
        EXPECT_EQ(c1->noiseFactors, c2->noiseFactors);
        EXPECT_EQ(c1->warp, c2->warp);
      }
    }
  }
}

TEST(Program, SeedChangesDurations) {
  AppParams p;
  p.ranks = 1;
  p.iterations = 5;
  p.seed = 1;
  const auto prog1 = apps::makeWavesim(p)->buildProgram(0);
  p.seed = 2;
  const auto prog2 = apps::makeWavesim(p)->buildProgram(0);
  bool anyDiff = false;
  for (std::size_t i = 0; i < prog1.size(); ++i) {
    const auto* c1 = std::get_if<ComputeAction>(&prog1[i]);
    const auto* c2 = std::get_if<ComputeAction>(&prog2[i]);
    if (c1 && c2 && c1->workNs != c2->workNs) anyDiff = true;
  }
  EXPECT_TRUE(anyDiff);
}

TEST(Program, RankOutOfRangeRejected) {
  AppParams p;
  p.ranks = 2;
  const auto app = apps::makeWavesim(p);
  EXPECT_THROW((void)app->buildProgram(2), ConfigError);
}

TEST(Program, IterationCountReflected) {
  AppParams p;
  p.ranks = 1;
  p.iterations = 7;
  const auto app = apps::makeNbsolver(p);
  const auto prog = app->buildProgram(0);
  std::size_t computes = 0;
  for (const auto& a : prog) computes += std::holds_alternative<ComputeAction>(a);
  // nbsolver: spmv + dot + 2x axpy = 4 computes per iteration.
  EXPECT_EQ(computes, 4u * 7u);
}

TEST(Program, DriftGrowsNominalDuration) {
  AppParams p;
  p.ranks = 1;
  p.iterations = 100;
  p.seed = 5;
  const auto app = apps::makeWavesim(p);
  const auto prog = app->buildProgram(0);
  // Collect stencil-sweep (phase 1) durations; drift is +8% end over start.
  std::vector<double> durations;
  for (const auto& a : prog) {
    if (const auto* c = std::get_if<ComputeAction>(&a)) {
      if (c->phaseId == 1) durations.push_back(static_cast<double>(c->workNs));
    }
  }
  ASSERT_EQ(durations.size(), 100u);
  double firstTen = 0.0, lastTen = 0.0;
  for (int i = 0; i < 10; ++i) {
    firstTen += durations[static_cast<std::size_t>(i)];
    lastTen += durations[durations.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_GT(lastTen / firstTen, 1.04);  // ~1.075 expected minus noise
}

TEST(Program, ScaleMultipliesDurations) {
  AppParams p;
  p.ranks = 1;
  p.iterations = 3;
  const auto base = apps::makeWavesim(p);
  p.scale = 2.0;
  const auto scaled = apps::makeWavesim(p);
  const auto progBase = base->buildProgram(0);
  const auto progScaled = scaled->buildProgram(0);
  double sumBase = 0.0, sumScaled = 0.0;
  for (std::size_t i = 0; i < progBase.size(); ++i) {
    if (const auto* c = std::get_if<ComputeAction>(&progBase[i]))
      sumBase += static_cast<double>(c->workNs);
    if (const auto* c = std::get_if<ComputeAction>(&progScaled[i]))
      sumScaled += static_cast<double>(c->workNs);
  }
  EXPECT_NEAR(sumScaled / sumBase, 2.0, 0.3);
}

TEST(Registry, NamesAndFactory) {
  const auto& names = apps::applicationNames();
  ASSERT_EQ(names.size(), 3u);
  AppParams p;
  p.ranks = 2;
  p.iterations = 2;
  for (const auto& name : names) {
    const auto app = apps::makeApplication(name, p);
    EXPECT_EQ(app->name(), name);
    EXPECT_EQ(app->numRanks(), 2u);
    EXPECT_EQ(app->numPhases(), 3u);
  }
  EXPECT_THROW((void)apps::makeApplication("bogus", p), ConfigError);
}

TEST(Registry, AmrflowIsFactoryOnlyExtension) {
  // amrflow is reachable by name but intentionally absent from the
  // canonical three-application list the paper's experiments sweep.
  AppParams p;
  p.ranks = 2;
  p.iterations = 4;
  const auto app = apps::makeApplication("amrflow", p);
  EXPECT_EQ(app->name(), "amrflow");
  EXPECT_EQ(app->numPhases(), 3u);
  for (const auto& name : apps::applicationNames()) EXPECT_NE(name, "amrflow");
}

TEST(Registry, AmrflowSwitchesRegimeAtHalf) {
  AppParams p;
  p.ranks = 1;
  p.iterations = 10;
  const auto app = apps::makeApplication("amrflow", p);
  const auto prog = app->buildProgram(0);
  std::vector<std::uint32_t> advectPhases;
  for (const auto& a : prog) {
    if (const auto* c = std::get_if<ComputeAction>(&a)) {
      if (c->phaseId != 2) advectPhases.push_back(c->phaseId);  // skip projection
    }
  }
  ASSERT_EQ(advectPhases.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(advectPhases[i], 0u);
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ(advectPhases[i], 1u);
}

TEST(Registry, BlockedWavesimVariant) {
  AppParams p;
  p.ranks = 2;
  p.iterations = 4;
  const auto base = apps::makeApplication("wavesim", p);
  const auto blocked = apps::makeApplication("wavesim-blocked", p);
  EXPECT_EQ(blocked->name(), "wavesim-blocked");
  // The blocked sweep is ~22% shorter nominally.
  EXPECT_NEAR(blocked->phase(1).duration.nominalNs /
                  base->phase(1).duration.nominalNs,
              0.78, 0.01);
  // Its internal evolution is flat-ish: normalized rate at the end stays
  // high instead of collapsing.
  const auto& baseShape =
      base->phase(1).model.profile(counters::CounterId::TotIns).shape;
  const auto& blockedShape =
      blocked->phase(1).model.profile(counters::CounterId::TotIns).shape;
  EXPECT_LT(baseShape.normalizedRate(0.95), 0.7);
  EXPECT_GT(blockedShape.normalizedRate(0.95), 0.9);
  for (const auto& name : apps::applicationNames())
    EXPECT_NE(name, "wavesim-blocked");
}

TEST(Registry, PhaseAccessors) {
  AppParams p;
  p.ranks = 1;
  p.iterations = 1;
  const auto app = apps::makeParticlemesh(p);
  EXPECT_EQ(app->phase(1).model.name(), "force_eval");
  EXPECT_GT(app->phase(1).duration.rankImbalanceSigma, 0.05);
}

}  // namespace
}  // namespace unveil::sim
