/// Tests for counter identities, snapshot arithmetic and derived metrics.

#include <gtest/gtest.h>

#include "unveil/counters/counter.hpp"
#include "unveil/support/error.hpp"

namespace unveil::counters {
namespace {

TEST(CounterNames, RoundTripAll) {
  for (CounterId id : kAllCounters) {
    EXPECT_EQ(counterFromName(counterName(id)), id);
  }
}

TEST(CounterNames, UnknownThrows) {
  EXPECT_THROW((void)counterFromName("PAPI_NOPE"), Error);
  EXPECT_THROW((void)counterFromName(""), Error);
}

TEST(CounterNames, PapiConventions) {
  EXPECT_EQ(counterName(CounterId::TotIns), "PAPI_TOT_INS");
  EXPECT_EQ(counterName(CounterId::L2Dcm), "PAPI_L2_DCM");
}

TEST(CounterSet, IndexedAccess) {
  CounterSet c;
  c[CounterId::TotIns] = 100;
  c[CounterId::FpOps] = 7;
  EXPECT_EQ(c[CounterId::TotIns], 100u);
  EXPECT_EQ(c[CounterId::FpOps], 7u);
  EXPECT_EQ(c[CounterId::L1Dcm], 0u);
}

TEST(CounterSet, PlusEquals) {
  CounterSet a, b;
  a[CounterId::TotIns] = 10;
  b[CounterId::TotIns] = 5;
  b[CounterId::TotCyc] = 3;
  a += b;
  EXPECT_EQ(a[CounterId::TotIns], 15u);
  EXPECT_EQ(a[CounterId::TotCyc], 3u);
}

TEST(CounterSet, MinusComputesDelta) {
  CounterSet a, b;
  a[CounterId::TotIns] = 10;
  b[CounterId::TotIns] = 4;
  const CounterSet d = a.minus(b);
  EXPECT_EQ(d[CounterId::TotIns], 6u);
}

TEST(CounterSet, Equality) {
  CounterSet a, b;
  EXPECT_EQ(a, b);
  a[CounterId::BrMsp] = 1;
  EXPECT_NE(a, b);
}

TEST(DerivedMetrics, Ipc) {
  CounterSet d;
  d[CounterId::TotIns] = 300;
  d[CounterId::TotCyc] = 200;
  EXPECT_DOUBLE_EQ(DerivedMetrics::ipc(d), 1.5);
}

TEST(DerivedMetrics, IpcZeroCycles) {
  CounterSet d;
  d[CounterId::TotIns] = 300;
  EXPECT_EQ(DerivedMetrics::ipc(d), 0.0);
}

TEST(DerivedMetrics, MipsUnits) {
  CounterSet d;
  d[CounterId::TotIns] = 2000;  // 2000 instructions over 1000 ns = 2 ins/ns
  EXPECT_DOUBLE_EQ(DerivedMetrics::mips(d, 1000), 2000.0);  // = 2000 MIPS
}

TEST(DerivedMetrics, MipsZeroDuration) {
  CounterSet d;
  d[CounterId::TotIns] = 2000;
  EXPECT_EQ(DerivedMetrics::mips(d, 0), 0.0);
}

TEST(DerivedMetrics, L2PerKiloIns) {
  CounterSet d;
  d[CounterId::TotIns] = 10000;
  d[CounterId::L2Dcm] = 25;
  EXPECT_DOUBLE_EQ(DerivedMetrics::l2MissesPerKiloIns(d), 2.5);
}

TEST(DerivedMetrics, L2ZeroInstructions) {
  CounterSet d;
  d[CounterId::L2Dcm] = 25;
  EXPECT_EQ(DerivedMetrics::l2MissesPerKiloIns(d), 0.0);
}

}  // namespace
}  // namespace unveil::counters
