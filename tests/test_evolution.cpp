/// Tests for cross-run evolution analysis (drift detection).

#include <gtest/gtest.h>

#include "unveil/analysis/evolution.hpp"
#include "unveil/analysis/experiments.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "test_util.hpp"

namespace unveil::analysis {
namespace {

TEST(FitLine, ExactLine) {
  const std::vector<double> x = {0.0, 0.5, 1.0, 1.5};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  const auto fit = fitLine(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLine) {
  support::Rng rng(3, "line");
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i / 200.0);
    y.push_back(5.0 + 3.0 * x.back() + rng.normal(0.0, 0.1));
  }
  const auto fit = fitLine(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.2);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(FitLine, FlatNoise) {
  support::Rng rng(5, "flat");
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i / 200.0);
    y.push_back(rng.normal(10.0, 1.0));
  }
  const auto fit = fitLine(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1.0);
  EXPECT_LT(fit.r2, 0.2);
}

TEST(FitLine, TooFewPoints) {
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {0.0, 1.0};
  EXPECT_THROW((void)fitLine(x, y), AnalysisError);
}

TEST(EvolutionParams, Validation) {
  EvolutionParams p;
  p.driftThreshold = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = EvolutionParams{};
  p.minTScore = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = EvolutionParams{};
  p.irregularCov = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Evolution, DetectsBuiltInWavesimDrift) {
  // wavesim's stencil sweep carries an 8% duration drift by construction;
  // its other phases carry none.
  const auto& run = testutil::smallWavesimRun();
  const auto result = analyze(run.trace);
  const auto rows = durationEvolution(result);
  bool sawSweepDrift = false;
  for (const auto& r : rows) {
    if (r.modalTruthPhase == 1) {  // stencil_sweep
      EXPECT_EQ(r.kind, TrendKind::Drifting);
      EXPECT_NEAR(r.relativeDrift, 0.08, 0.04);
      sawSweepDrift = true;
    } else if (r.modalTruthPhase == 0 || r.modalTruthPhase == 2) {
      EXPECT_NE(r.kind, TrendKind::Drifting) << "phase " << r.modalTruthPhase;
    }
  }
  EXPECT_TRUE(sawSweepDrift);
}

TEST(Evolution, TrendNames) {
  EXPECT_EQ(trendKindName(TrendKind::Stable), "stable");
  EXPECT_EQ(trendKindName(TrendKind::Drifting), "drifting");
  EXPECT_EQ(trendKindName(TrendKind::Irregular), "irregular");
}

TEST(Evolution, TableShape) {
  const auto& run = testutil::smallWavesimRun();
  const auto result = analyze(run.trace);
  const auto rows = durationEvolution(result);
  const auto table = evolutionTable(rows);
  EXPECT_EQ(table.rows(), rows.size());
  EXPECT_EQ(table.cols(), 7u);
}

TEST(Evolution, TinyClustersSkipped) {
  PipelineResult result;
  result.bursts.resize(2);
  result.clustering.labels = {0, 0};
  result.clustering.numClusters = 1;
  ClusterReport report;
  report.clusterId = 0;
  report.memberIdx = {0, 1};
  report.instances = 2;
  result.clusters.push_back(report);
  const auto rows = durationEvolution(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].kind, TrendKind::Stable);
  EXPECT_EQ(rows[0].relativeDrift, 0.0);
}

}  // namespace
}  // namespace unveil::analysis
