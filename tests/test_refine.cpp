/// Tests for structure-driven cluster refinement.

#include <gtest/gtest.h>

#include "unveil/cluster/refine.hpp"
#include "unveil/support/error.hpp"

namespace unveil::cluster {
namespace {

/// Builds bursts for `ranks` ranks × `iters` iterations of a 3-position
/// pattern, assigning labels via \p labelAt(rank, iter, pos).
template <typename LabelFn>
std::pair<std::vector<Burst>, Clustering> makePattern(trace::Rank ranks,
                                                      std::size_t iters,
                                                      int numClusters,
                                                      LabelFn labelAt) {
  std::vector<Burst> bursts;
  Clustering c;
  for (trace::Rank r = 0; r < ranks; ++r) {
    trace::TimeNs now = 0;
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::size_t pos = 0; pos < 3; ++pos) {
        Burst b;
        b.rank = r;
        b.begin = now;
        b.end = now + 100;
        now += 200;
        bursts.push_back(b);
        c.labels.push_back(labelAt(r, it, pos));
      }
    }
  }
  c.numClusters = static_cast<std::size_t>(numClusters);
  return {std::move(bursts), std::move(c)};
}

TEST(RefineParams, Validation) {
  RefineParams p;
  p.positionPurity = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RefineParams{};
  p.maxCooccurrence = 1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Refine, ZeroPeriodIsNoop) {
  auto [bursts, c] = makePattern(2, 10, 3, [](trace::Rank, std::size_t,
                                              std::size_t pos) {
    return static_cast<int>(pos);
  });
  const auto result = refineByStructure(bursts, c, 0);
  EXPECT_EQ(result.mergesApplied, 0u);
  EXPECT_EQ(result.clustering.labels, c.labels);
}

TEST(Refine, CleanClusteringUntouched) {
  auto [bursts, c] = makePattern(4, 20, 3, [](trace::Rank, std::size_t,
                                              std::size_t pos) {
    return static_cast<int>(pos);
  });
  const auto result = refineByStructure(bursts, c, 3);
  EXPECT_EQ(result.mergesApplied, 0u);
  EXPECT_EQ(result.clustering.numClusters, 3u);
}

TEST(Refine, MergesRankSplitFragment) {
  // Position 2 of the pattern got split by rank: ranks 0-1 labelled 2,
  // ranks 2-3 labelled 3. Positions 0/1 are clusters 0/1 everywhere.
  auto [bursts, c] = makePattern(4, 20, 4, [](trace::Rank r, std::size_t,
                                              std::size_t pos) {
    if (pos < 2) return static_cast<int>(pos);
    return r < 2 ? 2 : 3;
  });
  const auto result = refineByStructure(bursts, c, 3);
  EXPECT_EQ(result.mergesApplied, 1u);
  EXPECT_EQ(result.clustering.numClusters, 3u);
  // Fragments mapped to the same output id.
  EXPECT_EQ(result.mapping[2], result.mapping[3]);
  // All position-2 bursts now share one label.
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    if (i % 3 == 2) {
      EXPECT_EQ(result.clustering.labels[i], result.clustering.labels[2]);
    }
  }
}

TEST(Refine, DoesNotMergeCooccurringClusters) {
  // Clusters 0 and 1 alternate positions randomly-ish but both occur in
  // every iteration of every rank -> not fragments of one phase.
  auto [bursts, c] = makePattern(2, 20, 3, [](trace::Rank, std::size_t it,
                                              std::size_t pos) {
    if (pos == 2) return 2;
    // Swap positions 0/1 every other iteration: position purity drops.
    const bool swap = (it % 2 == 1);
    return static_cast<int>(swap ? 1 - pos : pos);
  });
  const auto result = refineByStructure(bursts, c, 3);
  EXPECT_EQ(result.mergesApplied, 0u);
}

TEST(Refine, DifferentPositionsNotMerged) {
  // 3 clusters at 3 distinct positions; also a 4th cluster at position 0 of
  // odd ranks only (master/worker-ish) — coincides positionally with
  // cluster 0 but co-occurs with it in the same iterations on... actually
  // give it position 1 so positions differ from cluster 0.
  auto [bursts, c] = makePattern(2, 20, 4, [](trace::Rank r, std::size_t,
                                              std::size_t pos) {
    if (pos == 1 && r == 1) return 3;
    return static_cast<int>(pos);
  });
  const auto result = refineByStructure(bursts, c, 3);
  // Cluster 3 shares position 1 with cluster 1 and never co-occurs on the
  // same rank... it does co-occur per (rank,iter)? Rank 1 iterations have
  // cluster 3 at position 1 and cluster 1 nowhere; rank 0 iterations have
  // cluster 1 only. So they merge — which is the *correct* call for an SPMD
  // refinement (same phase, rank-split). Verify exactly that.
  EXPECT_EQ(result.mergesApplied, 1u);
  EXPECT_EQ(result.mapping[1], result.mapping[3]);
}

TEST(Refine, NoiseLabelsPreserved) {
  auto [bursts, c] = makePattern(2, 10, 3, [](trace::Rank, std::size_t it,
                                              std::size_t pos) {
    if (pos == 2 && it == 5) return kNoiseLabel;
    return static_cast<int>(pos);
  });
  const auto result = refineByStructure(bursts, c, 3);
  std::size_t noise = 0;
  for (int l : result.clustering.labels) noise += (l == kNoiseLabel) ? 1 : 0;
  EXPECT_EQ(noise, 2u);  // one per rank
}

TEST(Refine, RegimeSplitNotMerged) {
  // Position 0 is cluster 0 for the first half of the run and cluster 3 for
  // the second half (a mid-run regime change). Positionally coincident and
  // exclusive — but temporally disjoint, so it must NOT merge.
  auto [bursts, c] = makePattern(4, 20, 4, [](trace::Rank, std::size_t it,
                                              std::size_t pos) {
    if (pos == 0) return it < 10 ? 0 : 3;
    return static_cast<int>(pos);
  });
  const auto result = refineByStructure(bursts, c, 3);
  EXPECT_EQ(result.mergesApplied, 0u);
  EXPECT_EQ(result.clustering.numClusters, 4u);
}

TEST(Refine, TemporalOverlapThresholdRespected) {
  // Same regime-split pattern, but with the overlap requirement disabled the
  // merge happens — documents what the threshold is protecting against.
  auto [bursts, c] = makePattern(4, 20, 4, [](trace::Rank, std::size_t it,
                                              std::size_t pos) {
    if (pos == 0) return it < 10 ? 0 : 3;
    return static_cast<int>(pos);
  });
  RefineParams loose;
  loose.minTemporalOverlap = 0.0;
  const auto result = refineByStructure(bursts, c, 3, loose);
  EXPECT_EQ(result.mergesApplied, 1u);
}

TEST(Refine, MappingCoversAllClusters) {
  auto [bursts, c] = makePattern(4, 10, 4, [](trace::Rank r, std::size_t,
                                              std::size_t pos) {
    if (pos < 2) return static_cast<int>(pos);
    return r < 2 ? 2 : 3;
  });
  const auto result = refineByStructure(bursts, c, 3);
  ASSERT_EQ(result.mapping.size(), 4u);
  for (int m : result.mapping) {
    EXPECT_GE(m, 0);
    EXPECT_LT(m, static_cast<int>(result.clustering.numClusters));
  }
}

}  // namespace
}  // namespace unveil::cluster
