/// Tests for the discrete-event engine: trace well-formedness, measurement
/// perturbation, communication semantics (including deadlock and mismatched
/// collectives) and ground-truth bookkeeping.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <variant>

#include "unveil/cluster/burst.hpp"
#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/engine.hpp"
#include "unveil/support/error.hpp"
#include "test_util.hpp"

namespace unveil::sim {
namespace {

using apps::AppParams;

AppParams tinyParams() {
  AppParams p;
  p.ranks = 4;
  p.iterations = 10;
  p.seed = 3;
  return p;
}

RunResult runTiny(const MeasurementConfig& m) {
  SimConfig cfg;
  cfg.measurement = m;
  return run(apps::makeWavesim(tinyParams()), cfg);
}

TEST(Engine, NullApplicationRejected) {
  EXPECT_THROW((void)run(nullptr, SimConfig{}), ConfigError);
}

TEST(Engine, TraceIsFinalizedAndValid) {
  const auto result = runTiny(MeasurementConfig::folding());
  EXPECT_TRUE(result.trace.finalized());
  EXPECT_EQ(result.trace.numRanks(), 4u);
  EXPECT_GT(result.totalRuntimeNs, 0u);
}

TEST(Engine, PhaseEventsArePaired) {
  const auto result = runTiny(MeasurementConfig::folding());
  std::map<trace::Rank, int> depth;
  std::size_t begins = 0, ends = 0;
  for (const auto& e : result.trace.events()) {
    if (e.kind == trace::EventKind::PhaseBegin) {
      ++depth[e.rank];
      ++begins;
      EXPECT_EQ(depth[e.rank], 1);
    } else if (e.kind == trace::EventKind::PhaseEnd) {
      --depth[e.rank];
      ++ends;
      EXPECT_EQ(depth[e.rank], 0);
    }
  }
  EXPECT_EQ(begins, ends);
  // wavesim: 3 phases x 10 iterations x 4 ranks.
  EXPECT_EQ(begins, 3u * 10u * 4u);
}

TEST(Engine, GroundTruthMatchesEvents) {
  const auto result = runTiny(MeasurementConfig::folding());
  EXPECT_EQ(result.truth.bursts.size(), 3u * 10u * 4u);
  EXPECT_EQ(result.truth.countForPhase(0), 10u * 4u);
  EXPECT_EQ(result.truth.countForPhase(1), 10u * 4u);
  for (const auto& b : result.truth.bursts) {
    EXPECT_LT(b.begin, b.end);
    EXPECT_LE(b.workNs, b.end - b.begin + 1);
    EXPECT_GT(b.totals[counters::counterIndex(counters::CounterId::TotIns)], 0.0);
  }
}

TEST(Engine, UninstrumentedRunHasNoRecordsButSameTruth) {
  const auto measured = runTiny(MeasurementConfig::folding());
  const auto bare = runTiny(MeasurementConfig::none());
  EXPECT_EQ(bare.trace.events().size(), 0u);
  EXPECT_EQ(bare.trace.samples().size(), 0u);
  EXPECT_EQ(bare.truth.bursts.size(), measured.truth.bursts.size());
}

TEST(Engine, MeasurementDilatesRuntime) {
  const auto none = runTiny(MeasurementConfig::none());
  const auto instr = runTiny(MeasurementConfig::instrumentationOnly());
  const auto coarse = runTiny(MeasurementConfig::folding());
  const auto fine = runTiny(MeasurementConfig::fineGrain());
  EXPECT_LT(none.totalRuntimeNs, instr.totalRuntimeNs);
  EXPECT_LT(instr.totalRuntimeNs, coarse.totalRuntimeNs);
  EXPECT_LT(coarse.totalRuntimeNs, fine.totalRuntimeNs);
  // Fine-grain must hurt by at least 5%; coarse must stay under 2%.
  const double base = static_cast<double>(none.totalRuntimeNs);
  EXPECT_GT(static_cast<double>(fine.totalRuntimeNs) / base, 1.05);
  EXPECT_LT(static_cast<double>(coarse.totalRuntimeNs) / base, 1.02);
}

TEST(Engine, SampleCountScalesWithPeriod) {
  const auto coarse = runTiny(MeasurementConfig::folding(2'000'000.0));
  const auto fine = runTiny(MeasurementConfig::folding(200'000.0));
  EXPECT_GT(fine.trace.samples().size(), 5 * coarse.trace.samples().size());
}

TEST(Engine, SamplesCoverAllRanks) {
  const auto result = runTiny(MeasurementConfig::folding());
  std::map<trace::Rank, std::size_t> perRank;
  for (const auto& s : result.trace.samples()) ++perRank[s.rank];
  EXPECT_EQ(perRank.size(), 4u);
}

TEST(Engine, StatesEmittedWhenEnabled) {
  const auto result = runTiny(MeasurementConfig::folding());
  EXPECT_GT(result.trace.states().size(), 0u);
  auto cfg = MeasurementConfig::folding();
  cfg.instrumentation.emitStates = false;
  SimConfig sim;
  sim.measurement = cfg;
  const auto without = run(apps::makeWavesim(tinyParams()), sim);
  EXPECT_EQ(without.trace.states().size(), 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto a = runTiny(MeasurementConfig::folding());
  const auto b = runTiny(MeasurementConfig::folding());
  EXPECT_EQ(a.totalRuntimeNs, b.totalRuntimeNs);
  EXPECT_EQ(a.trace.samples().size(), b.trace.samples().size());
  EXPECT_EQ(a.trace.events().size(), b.trace.events().size());
}

TEST(Engine, AllAppsProduceValidTraces) {
  for (const auto& name : apps::applicationNames()) {
    SimConfig cfg;
    cfg.measurement = MeasurementConfig::folding();
    const auto result = run(apps::makeApplication(name, tinyParams()), cfg);
    EXPECT_TRUE(result.trace.finalized()) << name;
    EXPECT_GT(result.truth.bursts.size(), 0u) << name;
  }
}

/// A pathological application whose rank 0 receives a message nobody sends.
class DeadlockApp final : public Application {
 public:
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] trace::Rank numRanks() const noexcept override { return 2; }
  [[nodiscard]] std::size_t numPhases() const noexcept override { return 1; }
  [[nodiscard]] const PhaseSpec& phase(std::uint32_t) const override { return spec_; }
  [[nodiscard]] Program buildProgram(trace::Rank r) const override {
    Program p;
    if (r == 0) p.emplace_back(RecvAction{1, 99});
    // rank 1 sends nothing and finishes immediately.
    return p;
  }

 private:
  std::string name_ = "deadlock";
  PhaseSpec spec_{counters::PhaseModel("p"), DurationSpec{}, counters::NoiseModel{}};
};

TEST(Engine, DeadlockDetected) {
  SimConfig cfg;
  EXPECT_THROW((void)run(std::make_shared<DeadlockApp>(), cfg), Error);
}

/// Ranks disagree about the collective operation at the same index.
class MismatchedCollectiveApp final : public Application {
 public:
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] trace::Rank numRanks() const noexcept override { return 2; }
  [[nodiscard]] std::size_t numPhases() const noexcept override { return 1; }
  [[nodiscard]] const PhaseSpec& phase(std::uint32_t) const override { return spec_; }
  [[nodiscard]] Program buildProgram(trace::Rank r) const override {
    Program p;
    p.emplace_back(CollectiveAction{
        r == 0 ? trace::MpiOp::Barrier : trace::MpiOp::Allreduce, 8});
    return p;
  }

 private:
  std::string name_ = "mismatch";
  PhaseSpec spec_{counters::PhaseModel("p"), DurationSpec{}, counters::NoiseModel{}};
};

TEST(Engine, MismatchedCollectiveDetected) {
  SimConfig cfg;
  EXPECT_THROW((void)run(std::make_shared<MismatchedCollectiveApp>(), cfg), Error);
}

/// Ring exchange that relies on eager sends: must complete, and message
/// availability must respect the network transfer time.
class PingApp final : public Application {
 public:
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] trace::Rank numRanks() const noexcept override { return 2; }
  [[nodiscard]] std::size_t numPhases() const noexcept override { return 1; }
  [[nodiscard]] const PhaseSpec& phase(std::uint32_t) const override { return spec_; }
  [[nodiscard]] Program buildProgram(trace::Rank r) const override {
    Program p;
    if (r == 0) {
      p.emplace_back(SendAction{1, 0, 1 << 20});  // 1 MiB
    } else {
      p.emplace_back(RecvAction{0, 0});
    }
    return p;
  }

 private:
  std::string name_ = "ping";
  PhaseSpec spec_{counters::PhaseModel("p"), DurationSpec{}, counters::NoiseModel{}};
};

TEST(Engine, MessageTransferTimeRespected) {
  SimConfig cfg;
  cfg.measurement = MeasurementConfig::instrumentationOnly();
  const auto result = run(std::make_shared<PingApp>(), cfg);
  // Receiver cannot finish before latency + bytes/bandwidth.
  const double minTransfer = cfg.network.transferNs(1 << 20);
  EXPECT_GE(static_cast<double>(result.totalRuntimeNs), minTransfer);
}

TEST(Engine, CollectiveFinishesTogether) {
  // All ranks' Allreduce intervals for the same instance end at the same
  // timestamp (barrier semantics + shared postal cost).
  const auto result = runTiny(MeasurementConfig::instrumentationOnly());
  // Collect per rank the end times of Allreduce MpiEnd events, in order.
  std::map<trace::Rank, std::vector<trace::TimeNs>> ends;
  for (const auto& e : result.trace.events()) {
    if (e.kind == trace::EventKind::MpiEnd &&
        e.value == static_cast<std::uint32_t>(trace::MpiOp::Allreduce))
      ends[e.rank].push_back(e.time);
  }
  ASSERT_EQ(ends.size(), 4u);
  const auto& reference = ends.begin()->second;
  for (const auto& [rank, times] : ends) {
    (void)rank;
    ASSERT_EQ(times.size(), reference.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      // Equal up to the post-collective probe rounding (<= 1 ns).
      EXPECT_LE(times[i] > reference[i] ? times[i] - reference[i]
                                        : reference[i] - times[i],
                1u);
    }
  }
}

TEST(Engine, CollectiveFinishAfterLastArrival) {
  // The collective cannot complete before the last rank arrives: every
  // rank's Allreduce MpiEnd is strictly after every rank's MpiBegin of the
  // same instance.
  const auto result = runTiny(MeasurementConfig::instrumentationOnly());
  std::map<trace::Rank, std::vector<trace::TimeNs>> begins, ends;
  for (const auto& e : result.trace.events()) {
    if (e.value != static_cast<std::uint32_t>(trace::MpiOp::Allreduce)) continue;
    if (e.kind == trace::EventKind::MpiBegin) begins[e.rank].push_back(e.time);
    if (e.kind == trace::EventKind::MpiEnd) ends[e.rank].push_back(e.time);
  }
  const std::size_t instances = begins.begin()->second.size();
  for (std::size_t i = 0; i < instances; ++i) {
    trace::TimeNs lastArrival = 0;
    trace::TimeNs firstFinish = ~trace::TimeNs{0};
    for (const auto& [rank, times] : begins) {
      (void)rank;
      lastArrival = std::max(lastArrival, times[i]);
    }
    for (const auto& [rank, times] : ends) {
      (void)rank;
      firstFinish = std::min(firstFinish, times[i]);
    }
    EXPECT_GT(firstFinish, lastArrival) << "instance " << i;
  }
}

TEST(Engine, CountersContinuousAcrossBursts) {
  // A burst's begin snapshot equals the previous burst's end snapshot plus
  // the MPI-interval accumulation in between — counters never jump.
  const auto result = runTiny(MeasurementConfig::instrumentationOnly());
  const cluster::BurstExtraction ex;
  const auto bursts = ex.fromPhaseEvents(result.trace);
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    if (bursts[i].rank != bursts[i - 1].rank) continue;
    for (counters::CounterId id : counters::kAllCounters) {
      EXPECT_GE(bursts[i].beginCounters[id], bursts[i - 1].endCounters[id]);
    }
  }
}

TEST(Engine, InstanceWorkDurationsVary) {
  // Per-instance noise is real: the same phase's burst durations differ
  // across instances (no accidental constant-folding of the noise path).
  const auto result = runTiny(MeasurementConfig::instrumentationOnly());
  std::set<trace::TimeNs> sweepDurations;
  for (const auto& b : result.truth.bursts)
    if (b.phaseId == 1) sweepDurations.insert(b.workNs);
  EXPECT_GT(sweepDurations.size(), 10u);
}

TEST(Engine, ValidatesConfig) {
  SimConfig cfg;
  cfg.measurement.sampling.periodNs = -5.0;
  EXPECT_THROW((void)run(apps::makeWavesim(tinyParams()), cfg), ConfigError);
}

}  // namespace
}  // namespace unveil::sim
