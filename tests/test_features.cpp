/// Tests for feature extraction and z-score normalization.

#include <gtest/gtest.h>

#include <cmath>

#include "unveil/cluster/features.hpp"
#include "unveil/support/error.hpp"

namespace unveil::cluster {
namespace {

Burst makeBurst(trace::TimeNs duration, std::uint64_t ins, std::uint64_t cyc,
                std::uint64_t l2 = 0) {
  Burst b;
  b.begin = 1000;
  b.end = 1000 + duration;
  b.endCounters[counters::CounterId::TotIns] = ins;
  b.endCounters[counters::CounterId::TotCyc] = cyc;
  b.endCounters[counters::CounterId::L2Dcm] = l2;
  return b;
}

TEST(Features, Values) {
  const Burst b = makeBurst(1'000'000, 2'000'000, 1'000'000, 4000);
  EXPECT_NEAR(burstFeature(b, FeatureId::LogDurationNs), 6.0, 1e-9);
  EXPECT_NEAR(burstFeature(b, FeatureId::LogInstructions),
              std::log10(2'000'001.0), 1e-9);
  EXPECT_NEAR(burstFeature(b, FeatureId::Ipc), 2.0, 1e-9);
  EXPECT_NEAR(burstFeature(b, FeatureId::AvgMips), 2000.0, 1e-9);
  EXPECT_NEAR(burstFeature(b, FeatureId::L2PerKIns), 2.0, 1e-9);
}

TEST(Features, NamesDistinct) {
  EXPECT_NE(featureName(FeatureId::Ipc), featureName(FeatureId::AvgMips));
  EXPECT_FALSE(std::string_view(featureName(FeatureId::LogDurationNs)).empty());
}

TEST(FeatureMatrix, Accessors) {
  FeatureMatrix m(2, 3);
  m.at(1, 2) = 7.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.dims(), 3u);
  EXPECT_EQ(m.at(1, 2), 7.0);
  EXPECT_EQ(m.row(1)[2], 7.0);
  EXPECT_EQ(m.at(0, 0), 0.0);
}

TEST(FeatureMatrix, ZeroDimsRejected) { EXPECT_THROW(FeatureMatrix(3, 0), ConfigError); }

TEST(BuildFeatures, ProducesMatrix) {
  std::vector<Burst> bursts = {makeBurst(1000, 100, 100),
                               makeBurst(2000, 400, 200)};
  const std::vector<FeatureId> f = {FeatureId::LogDurationNs, FeatureId::Ipc};
  const auto m = buildFeatures(bursts, f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.dims(), 2u);
  EXPECT_NEAR(m.at(1, 1), 2.0, 1e-9);
}

TEST(BuildFeatures, EmptyFeaturesRejected) {
  std::vector<Burst> bursts = {makeBurst(1000, 100, 100)};
  EXPECT_THROW((void)buildFeatures(bursts, {}), ConfigError);
}

TEST(DefaultFeatures, IsInstructionsByIpc) {
  const auto f = defaultFeatures();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], FeatureId::LogInstructions);
  EXPECT_EQ(f[1], FeatureId::Ipc);
}

TEST(Normalizer, ZeroMeanUnitVariance) {
  FeatureMatrix m(4, 1);
  m.at(0, 0) = 1.0;
  m.at(1, 0) = 2.0;
  m.at(2, 0) = 3.0;
  m.at(3, 0) = 4.0;
  const auto n = ZScoreNormalizer::fit(m);
  const auto z = n.apply(m);
  double sum = 0.0, ss = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    sum += z.at(i, 0);
    ss += z.at(i, 0) * z.at(i, 0);
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_NEAR(ss / 3.0, 1.0, 1e-12);  // sample variance
}

TEST(Normalizer, DegenerateColumnPassesThrough) {
  FeatureMatrix m(3, 1);
  m.at(0, 0) = 5.0;
  m.at(1, 0) = 5.0;
  m.at(2, 0) = 5.0;
  const auto n = ZScoreNormalizer::fit(m);
  const auto z = n.apply(m);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(z.at(i, 0), 0.0);
}

TEST(Normalizer, InvertRoundTrips) {
  FeatureMatrix m(3, 2);
  m.at(0, 0) = 1.0;
  m.at(1, 0) = 5.0;
  m.at(2, 0) = 9.0;
  m.at(0, 1) = -2.0;
  m.at(1, 1) = 0.0;
  m.at(2, 1) = 2.0;
  const auto n = ZScoreNormalizer::fit(m);
  const auto z = n.apply(m);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto back = n.invert(z.row(r));
    EXPECT_NEAR(back[0], m.at(r, 0), 1e-12);
    EXPECT_NEAR(back[1], m.at(r, 1), 1e-12);
  }
}

TEST(Normalizer, DimsMismatchRejected) {
  FeatureMatrix m(2, 2);
  const auto n = ZScoreNormalizer::fit(m);
  FeatureMatrix other(2, 3);
  EXPECT_THROW((void)n.apply(other), ConfigError);
  const std::vector<double> row = {1.0};
  EXPECT_THROW((void)n.invert(row), ConfigError);
}

}  // namespace
}  // namespace unveil::cluster
